package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The summary layer distills each function body into the facts the
// interprocedural analyzers compose: an ordered stream of lock
// acquire/release events and call/spawn sites annotated with the locks
// held at that point, timer/ticker creation sites with their stop
// disposition, whether the function loops forever without a cancel
// path, and taint facts (returns externally-decoded bytes; performs
// signature verification and expiry checks). Lock identities are field
// objects, not expressions, so `n.repl.mu` and the alias `r := &n.repl;
// r.mu.Lock()` resolve to the same lock "cluster.replState.mu".

// Module is the shared interprocedural state for one analysis run: all
// loaded packages, the call graph, and one summary per function body.
type Module struct {
	Pkgs  []*Package
	graph *CallGraph
	sums  map[*FuncNode]*FuncSummary

	// fieldOwner renders struct-field lock/timer identities.
	fieldOwner map[*types.Var]string
	// stoppedFields holds struct fields on which .Stop() is called
	// anywhere in the module (tickers stored to a field and stopped in a
	// Close/Shutdown method elsewhere).
	stoppedFields map[*types.Var]bool
}

// NewModule builds the call graph and all function summaries, then runs
// the cross-function fixpoints (transitive taint and sanitizer facts).
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:          pkgs,
		graph:         buildCallGraph(pkgs),
		sums:          make(map[*FuncNode]*FuncSummary),
		fieldOwner:    make(map[*types.Var]string),
		stoppedFields: make(map[*types.Var]bool),
	}
	for _, named := range m.graph.named {
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		owner := named.Obj().Name()
		if p := named.Obj().Pkg(); p != nil {
			owner = p.Name() + "." + owner
		}
		for i := 0; i < st.NumFields(); i++ {
			m.fieldOwner[st.Field(i)] = owner
		}
	}
	for _, n := range m.graph.Nodes {
		m.sums[n] = m.summarize(n)
		m.graph.addCallsFrom(n, m.sums[n])
	}
	m.propagateSanitizers()
	m.propagateTaint()
	return m
}

// Graph returns the module call graph.
func (m *Module) Graph() *CallGraph { return m.graph }

// Summary returns the summary for a node (nil for unknown nodes).
func (m *Module) Summary(n *FuncNode) *FuncSummary { return m.sums[n] }

// OpKind classifies one summary event.
type OpKind int

const (
	OpAcquire OpKind = iota
	OpRelease
	OpCall
	OpSpawn
)

// SummaryOp is one event in a function body, in source order.
type SummaryOp struct {
	Kind     OpKind
	Lock     string      // acquire/release: the lock identity
	RLock    bool        // acquire/release via RLock/RUnlock
	Targets  []*FuncNode // call/spawn: resolved callee bodies (may be empty)
	Held     []string    // sorted lock identities held entering this op
	Pos      token.Pos
	Deferred bool
}

// TimerSite is one time.NewTicker/NewTimer/Tick/After call site.
type TimerSite struct {
	Kind     string // "NewTicker", "NewTimer", "Tick", "After"
	Pos      token.Pos
	Stopped  bool       // a Stop/Reset on the result is visible in this function
	Escapes  bool       // result is returned or passed on — managed elsewhere
	FieldVar *types.Var // field the result is stored to (module-wide Stop check)
	InSelect bool       // time.After: the call is a select case channel
	Cases    int        // time.After: how many cases that select has
	InLoop   bool       // the site sits inside a loop body
}

// FuncSummary is the composed per-function fact sheet.
type FuncSummary struct {
	Node   *FuncNode
	Ops    []SummaryOp
	Timers []TimerSite

	// ForeverLoop is the position of a `for { }`-style loop with no
	// return, break, channel receive, or select — a goroutine running it
	// can never be stopped (0 = none).
	ForeverLoop token.Pos

	// ReturnsTainted: some return value derives from externally decoded
	// bytes (xmldom.Parse, base64 decode, io.ReadAll, or a call to
	// another tainted-returning function). Fixpointed module-wide.
	ReturnsTainted bool
	// Sanitizes: the function (possibly via callees) both verifies a
	// signature and checks an expiry — its output is trusted.
	Sanitizes bool

	verifies []token.Pos // signature-verification sites (own + sanitizing calls)
	expiries []token.Pos // expiry-check sites (own + sanitizing calls)

	ownVerifies []token.Pos
	ownExpiries []token.Pos
}

// VerifySites returns the positions where a signature verification is
// performed or delegated; ExpirySites likewise for expiry checks.
func (s *FuncSummary) VerifySites() []token.Pos { return s.verifies }
func (s *FuncSummary) ExpirySites() []token.Pos { return s.expiries }

// addCallsFrom folds a summary's resolved call targets into the graph's
// edge cache.
func (g *CallGraph) addCallsFrom(n *FuncNode, sum *FuncSummary) {
	for _, op := range sum.Ops {
		if op.Kind == OpCall || op.Kind == OpSpawn {
			g.addCall(n, op.Targets)
		}
	}
}

// --- summary construction ---

type sumBuilder struct {
	m    *Module
	g    *CallGraph
	pkg  *Package
	node *FuncNode
	sum  *FuncSummary

	// locals tracks function values bound to local variables
	// (f := x.Method; ... f()) for call resolution.
	locals map[types.Object][]*FuncNode
	// timerVars maps a local variable to the timer site assigned to it.
	timerVars map[types.Object]*TimerSite

	loopDepth int
	// selCases > 0 while walking the comm expression of a select case:
	// the number of cases in that select.
	selCases int
	// escDepth > 0 while walking expressions whose value escapes the
	// function (call arguments, return values, composite literals, channel
	// sends) — a timer created there is presumed managed by its receiver.
	escDepth int
}

func (m *Module) summarize(node *FuncNode) *FuncSummary {
	b := &sumBuilder{
		m: m, g: m.graph, pkg: node.Pkg, node: node,
		sum:       &FuncSummary{Node: node},
		locals:    make(map[types.Object][]*FuncNode),
		timerVars: make(map[types.Object]*TimerSite),
	}
	held := make(map[string]bool)
	b.walkStmts(node.Body.List, held)
	b.sum.verifies = append([]token.Pos(nil), b.sum.ownVerifies...)
	b.sum.expiries = append([]token.Pos(nil), b.sum.ownExpiries...)
	return b.sum
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

func unionHeld(a, b map[string]bool) map[string]bool {
	for k := range b {
		a[k] = true
	}
	return a
}

func heldList(held map[string]bool) []string {
	if len(held) == 0 {
		return nil
	}
	out := make([]string, 0, len(held))
	for k := range held {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (b *sumBuilder) walkStmts(list []ast.Stmt, held map[string]bool) map[string]bool {
	for _, s := range list {
		held = b.walkStmt(s, held)
	}
	return held
}

// walkStmt threads the held-lock set through one statement. Branch
// bodies run on copies and merge by union: a lock possibly held after a
// branch counts as held (conservative for ordering).
func (b *sumBuilder) walkStmt(s ast.Stmt, held map[string]bool) map[string]bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.walkStmts(s.List, held)
	case *ast.ExprStmt:
		return b.walkExpr(s.X, held)
	case *ast.GoStmt:
		held = b.walkCallOperands(s.Call, held)
		b.emitCallOp(OpSpawn, s.Call, held, false)
		return held
	case *ast.DeferStmt:
		if id, rlock, isUnlock := b.unlockOf(s.Call); isUnlock {
			// Deferred unlock: the lock stays held to function end.
			b.sum.Ops = append(b.sum.Ops, SummaryOp{
				Kind: OpRelease, Lock: id, RLock: rlock,
				Held: heldList(held), Pos: s.Pos(), Deferred: true,
			})
			return held
		}
		held = b.walkCallOperands(s.Call, held)
		b.noteStopCall(s.Call)
		b.noteVerifyExpiry(s.Call)
		b.emitCallOp(OpCall, s.Call, held, true)
		return held
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			held = b.walkExpr(rhs, held)
		}
		for _, lhs := range s.Lhs {
			held = b.walkExpr(lhs, held)
		}
		b.recordAssign(s)
		return held
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = b.walkExpr(v, held)
					}
					b.recordValueSpec(vs)
				}
			}
		}
		return held
	case *ast.ReturnStmt:
		b.escDepth++
		for _, r := range s.Results {
			held = b.walkExpr(r, held)
		}
		b.escDepth--
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			held = b.walkStmt(s.Init, held)
		}
		held = b.walkExpr(s.Cond, held)
		thenHeld := b.walkStmts(s.Body.List, copyHeld(held))
		elseHeld := copyHeld(held)
		if s.Else != nil {
			elseHeld = b.walkStmt(s.Else, elseHeld)
		}
		return unionHeld(thenHeld, elseHeld)
	case *ast.ForStmt:
		if s.Init != nil {
			held = b.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			held = b.walkExpr(s.Cond, held)
		}
		b.checkForeverLoop(s)
		b.loopDepth++
		body := b.walkStmts(s.Body.List, copyHeld(held))
		if s.Post != nil {
			body = b.walkStmt(s.Post, body)
		}
		b.loopDepth--
		return unionHeld(held, body)
	case *ast.RangeStmt:
		held = b.walkExpr(s.X, held)
		b.loopDepth++
		body := b.walkStmts(s.Body.List, copyHeld(held))
		b.loopDepth--
		return unionHeld(held, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = b.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			held = b.walkExpr(s.Tag, held)
		}
		out := copyHeld(held)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				held = b.walkExpr(e, held)
			}
			out = unionHeld(out, b.walkStmts(cc.Body, copyHeld(held)))
		}
		return out
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = b.walkStmt(s.Init, held)
		}
		held = b.walkStmt(s.Assign, held)
		out := copyHeld(held)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			out = unionHeld(out, b.walkStmts(cc.Body, copyHeld(held)))
		}
		return out
	case *ast.SelectStmt:
		out := copyHeld(held)
		ncases := len(s.Body.List)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				b.selCases = ncases
				held = b.walkStmt(cc.Comm, held)
				b.selCases = 0
			}
			out = unionHeld(out, b.walkStmts(cc.Body, copyHeld(held)))
		}
		return out
	case *ast.LabeledStmt:
		return b.walkStmt(s.Stmt, held)
	case *ast.SendStmt:
		held = b.walkExpr(s.Chan, held)
		b.escDepth++
		held = b.walkExpr(s.Value, held)
		b.escDepth--
		return held
	case *ast.IncDecStmt:
		return b.walkExpr(s.X, held)
	default:
		return held
	}
}

// walkExpr visits an expression in evaluation order, emitting ops for
// the calls it contains.
func (b *sumBuilder) walkExpr(e ast.Expr, held map[string]bool) map[string]bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		held = b.walkCallOperands(e, held)
		return b.handleCall(e, held)
	case *ast.FuncLit:
		return held // a separate node; summarized on its own
	case *ast.ParenExpr:
		return b.walkExpr(e.X, held)
	case *ast.SelectorExpr:
		return b.walkExpr(e.X, held)
	case *ast.StarExpr:
		return b.walkExpr(e.X, held)
	case *ast.UnaryExpr:
		return b.walkExpr(e.X, held)
	case *ast.BinaryExpr:
		held = b.walkExpr(e.X, held)
		return b.walkExpr(e.Y, held)
	case *ast.IndexExpr:
		held = b.walkExpr(e.X, held)
		return b.walkExpr(e.Index, held)
	case *ast.IndexListExpr:
		held = b.walkExpr(e.X, held)
		for _, ix := range e.Indices {
			held = b.walkExpr(ix, held)
		}
		return held
	case *ast.SliceExpr:
		held = b.walkExpr(e.X, held)
		for _, x := range []ast.Expr{e.Low, e.High, e.Max} {
			if x != nil {
				held = b.walkExpr(x, held)
			}
		}
		return held
	case *ast.TypeAssertExpr:
		return b.walkExpr(e.X, held)
	case *ast.CompositeLit:
		b.escDepth++
		for _, el := range e.Elts {
			held = b.walkExpr(el, held)
		}
		b.escDepth--
		return held
	case *ast.KeyValueExpr:
		return b.walkExpr(e.Value, held)
	default:
		return held
	}
}

// walkCallOperands visits a call's function operand and arguments
// without treating the call itself.
func (b *sumBuilder) walkCallOperands(call *ast.CallExpr, held map[string]bool) map[string]bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		held = b.walkExpr(sel.X, held)
	}
	b.escDepth++
	for _, a := range call.Args {
		held = b.walkExpr(a, held)
	}
	b.escDepth--
	return held
}

// handleCall classifies one call: mutex acquire/release, timer
// creation, signature/expiry fact, or a plain call op.
func (b *sumBuilder) handleCall(call *ast.CallExpr, held map[string]bool) map[string]bool {
	if id, method, rlock, ok := b.mutexCall(call); ok {
		switch method {
		case "Lock", "RLock":
			b.sum.Ops = append(b.sum.Ops, SummaryOp{
				Kind: OpAcquire, Lock: id, RLock: rlock,
				Held: heldList(held), Pos: call.Pos(),
			})
			held[id] = true
		case "Unlock", "RUnlock":
			b.sum.Ops = append(b.sum.Ops, SummaryOp{
				Kind: OpRelease, Lock: id, RLock: rlock,
				Held: heldList(held), Pos: call.Pos(),
			})
			delete(held, id)
		}
		return held
	}
	if b.timerCall(call) {
		return held
	}
	b.noteStopCall(call)
	b.noteVerifyExpiry(call)
	b.emitCallOp(OpCall, call, held, false)
	return held
}

func (b *sumBuilder) emitCallOp(kind OpKind, call *ast.CallExpr, held map[string]bool, deferred bool) {
	b.sum.Ops = append(b.sum.Ops, SummaryOp{
		Kind: kind, Targets: b.g.resolveCall(b.pkg, call, b.locals),
		Held: heldList(held), Pos: call.Pos(), Deferred: deferred,
	})
}

// mutexCall matches sync.Mutex/RWMutex Lock/RLock/Unlock/RUnlock calls
// (including through embedded mutexes) and names the lock.
func (b *sumBuilder) mutexCall(call *ast.CallExpr) (id, method string, rlock, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false, false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" && name != "Unlock" && name != "RUnlock" {
		return "", "", false, false
	}
	fn, isFn := b.pkg.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false, false
	}
	return b.lockID(sel), name, strings.HasPrefix(name, "R"), true
}

// lockID names the mutex a Lock/Unlock selector refers to. Field
// selections resolve to the field object's owner type, so every alias
// of the same field is the same lock; package vars get pkg.name; locals
// get a per-function name.
func (b *sumBuilder) lockID(sel *ast.SelectorExpr) string {
	info := b.pkg.TypesInfo
	// Embedded mutex: x.Lock() selects through an embedded field — take
	// the field path's leaf from the selection.
	if s := info.Selections[sel]; s != nil && len(s.Index()) > 1 {
		if st, ok := s.Recv().Underlying().(*types.Struct); ok {
			f := st.Field(s.Index()[0])
			if owner := b.m.fieldOwner[f]; owner != "" {
				return owner + "." + f.Name()
			}
		}
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			if v.IsField() {
				if owner := b.m.fieldOwner[v]; owner != "" {
					return owner + "." + v.Name()
				}
				return b.pkg.Name + ".?." + v.Name()
			}
			// Qualified package var (pkg.Mu.Lock() from another package):
			// same identity as the declaring package's own references.
			if id := packageVarID(v); id != "" {
				return id
			}
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			if v.IsField() {
				if owner := b.m.fieldOwner[v]; owner != "" {
					return owner + "." + v.Name()
				}
			}
			if id := packageVarID(v); id != "" {
				return id
			}
			// Local mutex (or mutex-typed parameter): scope to the function.
			return b.node.Name() + "/" + v.Name()
		}
	}
	return b.node.Name() + "/" + types.ExprString(sel.X)
}

// packageVarID renders a package-scoped variable as "pkg.name" ("" for
// non-package vars), so every reference — qualified or not — agrees on
// the lock identity.
func packageVarID(v *types.Var) string {
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Name() + "." + v.Name()
	}
	return ""
}

// timerCall records time.NewTicker/NewTimer/Tick/After sites; reports
// whether the call was one.
func (b *sumBuilder) timerCall(call *ast.CallExpr) bool {
	fn := callee(b.pkg.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false // (time.Time).After is a comparison, not a timer
	}
	switch fn.Name() {
	case "NewTicker", "NewTimer", "Tick", "After":
	default:
		return false
	}
	b.sum.Timers = append(b.sum.Timers, TimerSite{
		Kind:     fn.Name(),
		Pos:      call.Pos(),
		Escapes:  b.escDepth > 0,
		InSelect: b.selCases > 0,
		Cases:    b.selCases,
		InLoop:   b.loopDepth > 0,
	})
	return true
}

// noteStopCall marks timers stopped in-function and struct fields
// stopped anywhere module-wide.
func (b *sumBuilder) noteStopCall(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stop" && sel.Sel.Name != "Reset") {
		return
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		if site := b.timerVars[b.pkg.TypesInfo.Uses[x]]; site != nil {
			site.Stopped = true
		}
	case *ast.SelectorExpr:
		if v, ok := b.pkg.TypesInfo.Uses[x.Sel].(*types.Var); ok && v.IsField() {
			b.m.stoppedFields[v] = true
		}
	}
}

// noteVerifyExpiry records signature-verification and expiry-check
// sites: ed25519.Verify, Verify* methods on pki types, and time
// comparisons (time.Time.After/Before with a parsed deadline).
func (b *sumBuilder) noteVerifyExpiry(call *ast.CallExpr) {
	fn := callee(b.pkg.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	switch {
	case path == "crypto/ed25519" && fn.Name() == "Verify":
		b.sum.ownVerifies = append(b.sum.ownVerifies, call.Pos())
	case pkgPathHasSuffix(path, "pki") && strings.HasPrefix(fn.Name(), "Verify"):
		b.sum.ownVerifies = append(b.sum.ownVerifies, call.Pos())
	case path == "time" && (fn.Name() == "After" || fn.Name() == "Before"):
		// Methods only: time.After the function is a timer, filtered above.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			b.sum.ownExpiries = append(b.sum.ownExpiries, call.Pos())
		}
	}
}

// unlockOf matches a deferred mu.Unlock()/RUnlock() call.
func (b *sumBuilder) unlockOf(call *ast.CallExpr) (id string, rlock, ok bool) {
	lid, method, rl, isMu := b.mutexCall(call)
	if !isMu || (method != "Unlock" && method != "RUnlock") {
		return "", false, false
	}
	return lid, rl, true
}

// recordAssign tracks local function-value bindings and timer
// variables.
func (b *sumBuilder) recordAssign(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		rhs := s.Rhs[i]
		switch l := lhs.(type) {
		case *ast.Ident:
			obj := b.pkg.TypesInfo.Defs[l]
			if obj == nil {
				obj = b.pkg.TypesInfo.Uses[l]
			}
			if obj == nil {
				continue
			}
			if ts := b.g.staticValueTargets(b.pkg, rhs); ts != nil {
				b.locals[obj] = ts
			}
			b.recordTimerBinding(obj, nil, rhs)
		case *ast.SelectorExpr:
			if v, ok := b.pkg.TypesInfo.Uses[l.Sel].(*types.Var); ok && v.IsField() {
				b.recordTimerBinding(nil, v, rhs)
			}
		}
	}
}

func (b *sumBuilder) recordValueSpec(vs *ast.ValueSpec) {
	if len(vs.Names) != len(vs.Values) {
		return
	}
	for i, name := range vs.Names {
		obj := b.pkg.TypesInfo.Defs[name]
		if obj == nil {
			continue
		}
		if ts := b.g.staticValueTargets(b.pkg, vs.Values[i]); ts != nil {
			b.locals[obj] = ts
		}
		b.recordTimerBinding(obj, nil, vs.Values[i])
	}
}

// recordTimerBinding links a just-created timer site to the variable or
// field receiving it.
func (b *sumBuilder) recordTimerBinding(local types.Object, field *types.Var, rhs ast.Expr) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(b.sum.Timers) == 0 {
		return
	}
	site := &b.sum.Timers[len(b.sum.Timers)-1]
	if site.Pos != call.Pos() || (site.Kind != "NewTicker" && site.Kind != "NewTimer") {
		return
	}
	if field != nil {
		site.FieldVar = field
		return
	}
	if local != nil {
		b.timerVars[local] = site
	}
}

// checkForeverLoop flags `for { ... }` bodies with no way out: no
// return, break, goto, channel receive, select, or panic — a goroutine
// parked in one can never be stopped or collected.
func (b *sumBuilder) checkForeverLoop(s *ast.ForStmt) {
	if s.Cond != nil || b.sum.ForeverLoop != 0 {
		return
	}
	escapes := false
	ast.Inspect(s.Body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt, *ast.SelectStmt:
			escapes = true
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				escapes = true
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW { // channel receive
				escapes = true
				return false
			}
		case *ast.RangeStmt:
			// range over a channel blocks until close — treat as a stop path.
			if _, isChan := b.pkg.TypesInfo.Types[n.X].Type.Underlying().(*types.Chan); isChan {
				escapes = true
				return false
			}
		case *ast.CallExpr:
			if fn := callee(b.pkg.TypesInfo, n); fn != nil && fn.Name() == "panic" {
				escapes = true
				return false
			}
		}
		return true
	})
	if !escapes {
		b.sum.ForeverLoop = s.Pos()
	}
}

// --- module-wide fixpoints ---

// propagateSanitizers folds callee verify/expiry sites upward: a call
// to a function that verifies (or checks expiry) counts as doing so at
// the call site. Runs to fixpoint so helper chains compose.
func (m *Module) propagateSanitizers() {
	for i := 0; i < 10; i++ {
		changed := false
		for _, n := range m.graph.Nodes {
			sum := m.sums[n]
			verifies := append([]token.Pos(nil), sum.ownVerifies...)
			expiries := append([]token.Pos(nil), sum.ownExpiries...)
			for _, op := range sum.Ops {
				if op.Kind != OpCall {
					continue
				}
				for _, t := range op.Targets {
					ts := m.sums[t]
					if ts == nil {
						continue
					}
					if len(ts.verifies) > 0 {
						verifies = append(verifies, op.Pos)
						break
					}
				}
				for _, t := range op.Targets {
					ts := m.sums[t]
					if ts == nil {
						continue
					}
					if len(ts.expiries) > 0 {
						expiries = append(expiries, op.Pos)
						break
					}
				}
			}
			if len(verifies) != len(sum.verifies) || len(expiries) != len(sum.expiries) {
				changed = true
			}
			sum.verifies, sum.expiries = verifies, expiries
			sum.Sanitizes = len(verifies) > 0 && len(expiries) > 0
		}
		if !changed {
			return
		}
	}
}

// propagateTaint computes ReturnsTainted module-wide: a function
// returns taint if some return value derives from a decode source or a
// call to another tainted-returning, non-sanitizing function.
func (m *Module) propagateTaint() {
	for i := 0; i < 20; i++ {
		changed := false
		for _, n := range m.graph.Nodes {
			sum := m.sums[n]
			if sum.ReturnsTainted {
				continue
			}
			ti := m.taintWalk(n)
			if ti.returnsTainted {
				sum.ReturnsTainted = true
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// taintInfo is the result of one intra-function taint walk.
type taintInfo struct {
	m    *Module
	node *FuncNode
	// vars holds local objects bound to tainted values.
	vars           map[types.Object]bool
	returnsTainted bool
}

// taintWalk runs the intra-function taint propagation for node using
// the module's current ReturnsTainted/Sanitizes facts.
func (m *Module) taintWalk(node *FuncNode) *taintInfo {
	ti := &taintInfo{m: m, node: node, vars: make(map[types.Object]bool)}
	// A few passes let taint flow through later-read locals and loops.
	for pass := 0; pass < 4; pass++ {
		before := len(ti.vars)
		returns := ti.returnsTainted
		ast.Inspect(node.Body, func(an ast.Node) bool {
			switch n := an.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				ti.assign(n)
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i, name := range n.Names {
						if ti.tainted(n.Values[i]) {
							ti.mark(ti.obj(name))
						}
					}
				}
			case *ast.RangeStmt:
				if ti.tainted(n.X) {
					if id, ok := n.Key.(*ast.Ident); ok {
						ti.mark(ti.obj(id))
					}
					if id, ok := n.Value.(*ast.Ident); ok {
						ti.mark(ti.obj(id))
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if ti.tainted(r) {
						ti.returnsTainted = true
					}
				}
			}
			return true
		})
		if len(ti.vars) == before && returns == ti.returnsTainted {
			break
		}
	}
	return ti
}

func (ti *taintInfo) obj(id *ast.Ident) types.Object {
	info := ti.node.Pkg.TypesInfo
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

func (ti *taintInfo) mark(o types.Object) {
	if o != nil {
		ti.vars[o] = true
	}
}

func (ti *taintInfo) assign(s *ast.AssignStmt) {
	markLhs := func(lhs ast.Expr) {
		if id, ok := lhs.(*ast.Ident); ok {
			ti.mark(ti.obj(id))
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i, lhs := range s.Lhs {
			if ti.tainted(s.Rhs[i]) {
				markLhs(lhs)
			}
		}
		return
	}
	// v, err := source(): one tainted rhs taints every lhs.
	if len(s.Rhs) == 1 && ti.tainted(s.Rhs[0]) {
		for _, lhs := range s.Lhs {
			markLhs(lhs)
		}
	}
}

// tainted reports whether an expression derives from externally
// decoded bytes under the module's current facts.
func (ti *taintInfo) tainted(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return ti.vars[ti.obj(e)]
	case *ast.CallExpr:
		return ti.callTainted(e)
	case *ast.SelectorExpr:
		return ti.tainted(e.X)
	case *ast.UnaryExpr:
		return ti.tainted(e.X)
	case *ast.StarExpr:
		return ti.tainted(e.X)
	case *ast.IndexExpr:
		return ti.tainted(e.X)
	case *ast.SliceExpr:
		return ti.tainted(e.X)
	case *ast.TypeAssertExpr:
		return ti.tainted(e.X)
	case *ast.BinaryExpr:
		return ti.tainted(e.X) || ti.tainted(e.Y)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if ti.tainted(kv.Value) {
					return true
				}
				continue
			}
			if ti.tainted(el) {
				return true
			}
		}
	}
	return false
}

func (ti *taintInfo) callTainted(call *ast.CallExpr) bool {
	m, pkg := ti.m, ti.node.Pkg
	targets := m.graph.resolveCall(pkg, call, nil)
	for _, t := range targets {
		if s := m.sums[t]; s != nil && s.Sanitizes {
			return false // a sanitizer's output is trusted
		}
	}
	if rootTaintSource(pkg.TypesInfo, call) {
		return true
	}
	for _, t := range targets {
		if s := m.sums[t]; s != nil && s.ReturnsTainted {
			return true
		}
	}
	// DOM navigation: a method call on a tainted receiver yields a
	// tainted piece of the same document (root.Child("tnSession")).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if ti.tainted(sel.X) {
			return true
		}
	}
	return false
}

// rootTaintSource matches the decode functions where external bytes
// enter: XML parsing, base64 decoding, and raw body reads.
func rootTaintSource(info *types.Info, call *ast.CallExpr) bool {
	fn := callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	switch {
	case pkgPathHasSuffix(path, "xmldom") && (fn.Name() == "Parse" || fn.Name() == "ParseString"):
		return true
	case path == "encoding/base64" && strings.Contains(fn.Name(), "Decode"):
		return true
	case path == "io" && fn.Name() == "ReadAll":
		return true
	}
	return false
}
