// Package a is the errwrap golden fixture.
package a

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

func wraps(err error) error {
	return fmt.Errorf("reading frame: %v", err) // want "error operand formatted with %v; use %w"
}

func wrapsS(err error) error {
	return fmt.Errorf("reading frame: %s", err) // want "error operand formatted with %s; use %w"
}

func wrapsWell(err error) error {
	return fmt.Errorf("reading frame: %w", err) // ok
}

func doubleWrap(err error) error {
	return fmt.Errorf("%w: %w", errBase, err) // ok: multi-%w since go1.20
}

func mixedOperands(n int, err error) error {
	// the int is %d, the error lands on the second verb
	return fmt.Errorf("frame %d: %v", n, err) // want "error operand formatted with %v"
}

func starWidth(w int, err error) error {
	// '*' consumes an argument; the error still aligns with %v
	return fmt.Errorf("%*d oops: %v", w, 7, err) // want "error operand formatted with %v"
}

func capitalized() error {
	return errors.New("Bad handshake") // want "error string \"Bad handshake\" is capitalized"
}

func capitalizedErrorf(n int) error {
	return fmt.Errorf("Too many rounds: %d", n) // want "is capitalized"
}

func initialism() error {
	return errors.New("TN service unavailable") // ok: initialisms stay upper-case
}

func properToken() error {
	return errors.New("X-TNL policy rejected") // ok
}

func punctuated() error {
	return errors.New("handshake failed.") // want "ends with punctuation"
}

func exclaimed(n int) error {
	return fmt.Errorf("round %d exploded!", n) // want "ends with punctuation"
}

func colonTail() error {
	return errors.New("context:") // ok: colons are separators, not sentence enders
}

func allowed() error {
	return errors.New("Sentence case kept on purpose.") //lint:allow errwrap fixture exception
}
