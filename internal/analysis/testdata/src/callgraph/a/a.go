// Package a is the call-graph driver fixture: interface dispatch,
// generic constraint dispatch, method values, and func-valued hook
// fields — the dynamic call shapes the module analyzers must resolve.
package a

import "sync"

type Runner interface {
	Run()
}

type Fast struct{ mu sync.Mutex }

func (f *Fast) Run() {
	f.mu.Lock()
	defer f.mu.Unlock()
}

type Slow struct{}

func (s Slow) Run() {}

// Dispatch calls through the interface: every implementation in the
// loaded packages is a possible target.
func Dispatch(r Runner) {
	r.Run()
}

// Generic dispatches through a type-parameter constraint.
func Generic[T Runner](v T) {
	v.Run()
}

// MethodValue binds a method to a local and calls the binding.
func MethodValue(f *Fast) {
	run := f.Run
	run()
}

// hooked carries a func-valued hook field (the TNService pattern).
type hooked struct {
	OnUpdate func()
}

func NewHooked() *hooked {
	return &hooked{OnUpdate: tick}
}

func tick() {}

// Fire invokes whatever was installed in the hook field.
func Fire(h *hooked) {
	h.OnUpdate()
}
