// Post-cluster shapes: the patterns internal/cluster actually uses —
// HTTP handler methods, a stored Start context driving background
// work, contexts threaded through goroutine closures and method
// values — pinned so the analyzer neither misses them nor cries wolf.
package cluster

import (
	"context"
	"net/http"
	"sync"
)

type node struct {
	ctxMu  sync.Mutex
	runCtx context.Context
}

// Start stores its context for background loops; the parameter is used.
func (n *node) Start(ctx context.Context) {
	n.ctxMu.Lock()
	defer n.ctxMu.Unlock()
	n.runCtx = ctx
}

// HandleStandby is an exported handler: it reaches the context through
// *http.Request, so no context parameter is demanded.
func (n *node) HandleStandby(w http.ResponseWriter, r *http.Request) {
	_ = ship(r.Context(), "peer")
}

// Replay is exported, calls context-aware code, and takes no context —
// flagged even though the call is inside a spawned closure.
func (n *node) Replay(peer string) { // want "exported Replay calls context-aware ship but takes no context.Context"
	go func() {
		_ = ship(context.TODO(), peer) // want "context.TODO is reserved for package main"
	}()
}

// Rebalance threads its context into a goroutine closure: used.
func (n *node) Rebalance(ctx context.Context, peers []string) {
	for _, p := range peers {
		p := p
		go func() { _ = ship(ctx, p) }()
	}
}

// Push passes its context through a method value; still used.
func (n *node) Push(ctx context.Context, peer string) error {
	f := ship
	return f(ctx, peer)
}

// KickReplication drives background work under the stored Start
// context by design; the convention is documented with an allow.
func (n *node) KickReplication(peer string) { //lint:allow ctxpropagate background push runs under the Start context
	n.ctxMu.Lock()
	defer n.ctxMu.Unlock()
	_ = ship(n.runCtx, peer)
}
