// Package cluster is a golden fixture: its import path ends in
// /cluster, so the ctxpropagate network-package rules apply — cluster
// RPCs (forwarding, standby shipping, migration, replication) must
// thread the caller's context so drains and shutdowns cancel them.
package cluster

import "context"

// ship is context-aware plumbing standing in for a cluster RPC.
func ship(ctx context.Context, peer string) error { return ctx.Err() }

// replicate conjures a root context in library code.
func replicate() error {
	ctx := context.Background() // want "context.Background is reserved for package main"
	return ship(ctx, "n2")
}

// Forward is an exported cluster RPC path with no context parameter.
func Forward(peer string) error { // want "exported Forward calls context-aware ship but takes no context.Context"
	return ship(nil, peer)
}

// Migrate declares a context and never passes it down.
func Migrate(ctx context.Context, peer string) error { // want "exported Migrate never uses its context parameter"
	return nil
}

// Adopt threads its context down; no finding.
func Adopt(ctx context.Context, peer string) error {
	return ship(ctx, peer)
}
