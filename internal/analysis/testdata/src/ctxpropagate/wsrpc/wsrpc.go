// Package wsrpc is a golden fixture: its import path ends in /wsrpc,
// so the ctxpropagate network-package rules apply.
package wsrpc

import (
	"context"
	"net/http"
)

// Dial is context-aware plumbing the fixtures below call into.
func Dial(ctx context.Context, addr string) error { return ctx.Err() }

// background conjures a root context in library code (unexported, so
// only the context-constructor rule fires).
func background() error {
	ctx := context.Background() // want "context.Background is reserved for package main"
	return Dial(ctx, "a")
}

// todo conjures the other root context.
func todo() error {
	ctx := context.TODO() // want "context.TODO is reserved for package main"
	return Dial(ctx, "a")
}

// MisplacedCtx takes a context, but not first.
func MisplacedCtx(addr string, ctx context.Context) error { // want "context.Context parameter must come first"
	return Dial(ctx, addr)
}

// NoCtx is an exported network path with no context parameter.
func NoCtx(addr string) error { // want "exported NoCtx calls context-aware Dial but takes no context.Context"
	return Dial(nil, addr)
}

// DropsCtx declares a context and never passes it down.
func DropsCtx(ctx context.Context, addr string) error { // want "exported DropsCtx never uses its context parameter"
	return nil
}

// BlankCtx discards the context outright.
func BlankCtx(_ context.Context, addr string) error { // want "exported BlankCtx discards its context parameter"
	return nil
}

// Good threads its context down; no finding.
func Good(ctx context.Context, addr string) error {
	return Dial(ctx, addr)
}

// ServeHTTP-style handlers derive the context from the request.
func Handler(w http.ResponseWriter, r *http.Request) {
	_ = Dial(r.Context(), "a")
}

// unexportedNoCtx is not exported, so the network-path rule skips it.
func unexportedNoCtx(addr string) error {
	return Dial(nil, addr)
}

// allowed is a deliberate, annotated exception.
func allowed() error {
	ctx := context.Background() //lint:allow ctxpropagate fixture exception
	return Dial(ctx, "a")
}
