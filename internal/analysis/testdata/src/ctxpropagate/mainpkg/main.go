// Command mainpkg is a golden fixture: package main may own root
// contexts, so nothing here is flagged.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = use(ctx)
}

func use(ctx context.Context) error { return ctx.Err() }
