// Package telemetry is a golden-fixture double of the real registry:
// the metricname analyzer matches constructor methods by name on any
// type declared in a package whose path ends in "telemetry".
package telemetry

// Counter, Gauge, and Histogram are opaque fixture handles.
type Counter struct{}
type Gauge struct{}
type Histogram struct{}

func (*Counter) Inc()    {}
func (*Gauge) Set(int64) {}

// Registry mirrors the real constructor signatures.
type Registry struct{}

func (r *Registry) Counter(name string, labels ...string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name string, labels ...string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	return &Histogram{}
}

func (r *Registry) LatencyHistogram(name string, labels ...string) *Histogram { return &Histogram{} }
