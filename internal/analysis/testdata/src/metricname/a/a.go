// Package a is the metricname golden fixture.
package a

import "telemetry"

const constName = "frames_total"

func record(r *telemetry.Registry, dynamic string) {
	r.Counter("tn_rounds_total").Inc()                     // ok
	r.Counter(constName).Inc()                             // ok: constants resolve
	r.Counter("tn_Rounds_total").Inc()                     // want "must match"
	r.Counter("_rounds_total").Inc()                       // want "must match"
	r.Counter("rounds_total_").Inc()                       // want "must match"
	r.Counter("tn_rounds").Inc()                           // want "counter name \"tn_rounds\" must end in _total"
	r.Counter(dynamic).Inc()                               // want "must be a constant string"
	r.Gauge("sessions_active").Set(1)                      // ok
	r.Gauge("sessions_total").Set(1)                       // want "must not carry a _total/_seconds/_bytes suffix"
	r.LatencyHistogram("join_seconds")                     // ok
	r.LatencyHistogram("join_latency")                     // want "must end in _seconds"
	r.Histogram("tree_nodes", nil)                         // ok: plain histograms carry no unit suffix rule
	r.Counter("labeled_total", "route", "/tn/start").Inc() // ok: paired labels
	r.Counter("odd_total", "route").Inc()                  // want "has 1 label arguments"
}

func kinds(r *telemetry.Registry) {
	r.Counter("mixed_kind_total").Inc()  // ok: first registration wins
	r.Histogram("mixed_kind_total", nil) // want "already registered as a counter"
	r.Histogram("join_seconds", nil)     // ok: latency histograms are histograms
	allowed(r)
}

func allowed(r *telemetry.Registry) {
	//lint:allow metricname fixture exception
	r.Counter("Legacy_name").Inc()
}
