// Package a is the atomicmix golden fixture.
package a

import "sync/atomic"

type counter struct {
	hits int64
	cold int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) read() int64 {
	return c.hits // want "hits is accessed with sync/atomic"
}

func (c *counter) coldSet() {
	atomic.StoreInt64(&c.cold, 1)
}

func newCounter() *counter {
	c := &counter{}
	c.cold = 0 //lint:allow atomicmix pre-publication initialization, no concurrent readers yet
	return c
}

var total int64

func addTotal() {
	atomic.AddInt64(&total, 1)
}

func resetTotal() {
	total = 0 // want "total is accessed with sync/atomic"
}

// typed atomics cannot be misused this way and are ignored.
type gauge struct {
	v atomic.Int64
}

func (g *gauge) set(x int64) { g.v.Store(x) }
func (g *gauge) get() int64  { return g.v.Load() }

// composite-literal keys are field names, not accesses.
func litKey() *counter {
	return &counter{hits: 0}
}
