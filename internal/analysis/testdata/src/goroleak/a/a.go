// Package a is the goroleak golden fixture.
package a

import "time"

func spin() {
	for {
	}
}

func runner() {
	spin()
}

func spawnForever() {
	go spin() // want "goroutine runs a.spin, which loops forever"
}

func spawnViaHelper() {
	go runner() // want "goroutine runs a.runner -> a.spin, which loops forever"
}

func spawnStoppable(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
		}
	}()
}

func tickLeak() {
	for range time.Tick(time.Second) { // want "time.Tick leaks its ticker"
	}
}

func afterRace(done chan struct{}) {
	select {
	case <-done:
	case <-time.After(time.Second): // want "time.After in a select with competing cases leaks the timer"
	}
}

// afterSleep is plain sleeping: the timer fires and is collected.
func afterSleep() {
	<-time.After(time.Second)
}

func tickerLeak() {
	t := time.NewTicker(time.Second) // want "time.NewTicker result is never stopped \\(no Stop in this function\\)"
	<-t.C
}

func tickerStopped() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	<-t.C
}

type poller struct {
	tick *time.Ticker
}

func (p *poller) start() {
	p.tick = time.NewTicker(time.Second) // want "stored to field tick, which is never stopped"
}

// loop's ticker is stopped by another method: field-level tracking must
// see the Stop even though it is in a different function.
type loop struct {
	tick *time.Ticker
}

func (l *loop) start() {
	l.tick = time.NewTicker(time.Second)
}

func (l *loop) stop() {
	l.tick.Stop()
}

// escaping timers are some caller's responsibility.
func newTicker() *time.Ticker {
	return time.NewTicker(time.Second)
}

func allowedTicker() {
	t := time.NewTicker(time.Second) //lint:allow goroleak runs to process exit by design
	<-t.C
}
