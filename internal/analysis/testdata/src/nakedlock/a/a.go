// Package a is the nakedlock golden fixture.
package a

import "sync"

type box struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	val int
}

func (b *box) naked() int {
	b.mu.Lock() // want "b.mu.Lock\\(\\) is not immediately followed by defer b.mu.Unlock\\(\\)"
	v := b.val
	b.mu.Unlock()
	return v
}

func (b *box) deferred() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.val
}

func (b *box) nakedRead() int {
	b.rw.RLock() // want "b.rw.RLock\\(\\) is not immediately followed by defer b.rw.RUnlock\\(\\)"
	v := b.val
	b.rw.RUnlock()
	return v
}

func (b *box) deferredRead() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.val
}

func (b *box) mismatchedDefer() int {
	b.rw.RLock() // want "b.rw.RLock\\(\\) is not immediately followed by defer b.rw.RUnlock\\(\\)"
	defer b.rw.Unlock()
	return b.val
}

func (b *box) wrongReceiverDefer(other *box) int {
	b.mu.Lock() // want "b.mu.Lock\\(\\) is not immediately followed by defer b.mu.Unlock\\(\\)"
	defer other.mu.Unlock()
	return b.val
}

func (b *box) inBranch(ok bool) int {
	if ok {
		b.mu.Lock() // want "b.mu.Lock\\(\\)"
		b.val++
		b.mu.Unlock()
	}
	return b.val
}

func (b *box) inSwitch(n int) {
	switch n {
	case 0:
		b.mu.Lock() // want "b.mu.Lock\\(\\)"
		b.val = n
		b.mu.Unlock()
	default:
		b.mu.Lock()
		defer b.mu.Unlock()
		b.val = n
	}
}

func (b *box) allowed() int {
	b.mu.Lock() //lint:allow nakedlock snapshot-then-release fixture
	v := b.val
	b.mu.Unlock()
	return v
}

// notAMutex has Lock/Unlock methods but is not a sync type; ignored.
type notAMutex struct{}

func (notAMutex) Lock()   {}
func (notAMutex) Unlock() {}

func otherLocker(l notAMutex) {
	l.Lock()
	l.Unlock()
}
