// Package clustershape pins nakedlock on the shapes internal/cluster
// actually uses: pointer-alias receivers, locks taken inside select
// comm clauses and switch cases, and mutex-pointer locals.
package clustershape

import "sync"

type replState struct {
	mu  sync.Mutex
	pos uint64
}

type node struct {
	mu   sync.Mutex
	repl replState
	work chan uint64
}

// aliasDefer locks through a pointer alias and defers through the same
// alias: the textual receivers match, no finding.
func (n *node) aliasDefer() uint64 {
	r := &n.repl
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pos
}

// aliasNaked is a genuinely naked alias lock.
func (n *node) aliasNaked() uint64 {
	r := &n.repl
	r.mu.Lock() // want "r.mu.Lock\\(\\) is not immediately followed by defer r.mu.Unlock\\(\\)"
	pos := r.pos
	r.mu.Unlock()
	return pos
}

// mutexPointerLocal takes the lock through a *sync.Mutex local.
func (n *node) mutexPointerLocal() {
	mu := &n.mu
	mu.Lock()
	defer mu.Unlock()
	n.repl.pos++
}

// commClauseDefer locks inside a select comm clause; the clause body is
// a statement list of its own and the defer directly follows.
func (n *node) commClauseDefer() {
	select {
	case p := <-n.work:
		n.mu.Lock()
		defer n.mu.Unlock()
		n.repl.pos = p
	default:
	}
}

// commClauseNaked is the same shape without the defer.
func (n *node) commClauseNaked() {
	select {
	case p := <-n.work:
		n.mu.Lock() // want "n.mu.Lock\\(\\) is not immediately followed by defer n.mu.Unlock\\(\\)"
		n.repl.pos = p
		n.mu.Unlock()
	default:
	}
}

// snapshotAllowed is the deliberate short-critical-section idiom: lock,
// snapshot, unlock before slow work.
func (n *node) snapshotAllowed() uint64 {
	n.mu.Lock() //lint:allow nakedlock snapshot-then-release; slow work below runs unlocked
	pos := n.repl.pos
	n.mu.Unlock()
	return pos
}
