// Package pki is the credtaint fixture's stand-in verifier; the
// analyzer treats Verify*-named methods of a pki package as signature
// verification facts.
package pki

import "credtaint/xmldom"

type KeyPair struct{}

func (KeyPair) VerifyTicket(doc *xmldom.Node) bool { return true }
