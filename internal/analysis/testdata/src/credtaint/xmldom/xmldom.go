// Package xmldom is the credtaint fixture's stand-in for the real DOM
// package; the analyzer matches decode sources by package-path suffix.
package xmldom

type Node struct {
	Name string
}

func Parse(b []byte) (*Node, error)       { return &Node{}, nil }
func ParseString(s string) (*Node, error) { return &Node{}, nil }

func (n *Node) Child(name string) *Node { return &Node{} }
