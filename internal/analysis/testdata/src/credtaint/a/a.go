// Package a is the credtaint golden fixture.
package a

import (
	"errors"
	"time"

	"credtaint/pki"
	"credtaint/xmldom"
)

type svc struct{}

func (svc) AdoptSessionDoc(doc *xmldom.Node) (int, error) { return 0, nil }

func adoptUnverified(s svc, raw string) {
	doc, _ := xmldom.ParseString(raw)
	s.AdoptSessionDoc(doc) // want "reaches AdoptSessionDoc without signature verification"
}

func adoptNoExpiry(s svc, k pki.KeyPair, raw string) {
	doc, _ := xmldom.ParseString(raw)
	if !k.VerifyTicket(doc) {
		return
	}
	s.AdoptSessionDoc(doc) // want "reaches AdoptSessionDoc without an expiry check"
}

func adoptWrongOrder(s svc, k pki.KeyPair, raw string, exp time.Time) {
	doc, _ := xmldom.ParseString(raw)
	if !k.VerifyTicket(doc) {
		return
	}
	if time.Now().After(exp) {
		return
	}
	s.AdoptSessionDoc(doc) // want "signature verified before the expiry check"
}

// adoptGuarded checks expiry first, then the signature: the invariant.
func adoptGuarded(s svc, k pki.KeyPair, raw string, exp time.Time) {
	doc, _ := xmldom.ParseString(raw)
	if time.Now().After(exp) {
		return
	}
	if !k.VerifyTicket(doc) {
		return
	}
	s.AdoptSessionDoc(doc)
}

var errRejected = errors.New("rejected")

// checkTicket is a sanitizer: a callee performing both checks makes its
// result trusted at every call site.
func checkTicket(k pki.KeyPair, raw string, exp time.Time) (*xmldom.Node, error) {
	doc, err := xmldom.ParseString(raw)
	if err != nil {
		return nil, err
	}
	if time.Now().After(exp) {
		return nil, errRejected
	}
	if !k.VerifyTicket(doc) {
		return nil, errRejected
	}
	return doc, nil
}

func adoptSanitized(s svc, k pki.KeyPair, raw string, exp time.Time) {
	doc, err := checkTicket(k, raw, exp)
	if err != nil {
		return
	}
	s.AdoptSessionDoc(doc)
}

// relay returns what it decodes; taint composes through it.
func relay(raw string) *xmldom.Node {
	doc, _ := xmldom.ParseString(raw)
	return doc
}

func adoptRelayed(s svc, raw string) {
	s.AdoptSessionDoc(relay(raw)) // want "reaches AdoptSessionDoc without signature verification"
}

// locally built documents are not tainted.
func adoptLocal(s svc) {
	s.AdoptSessionDoc(&xmldom.Node{Name: "tnSession"})
}

func adoptAllowed(s svc, raw string) {
	doc, _ := xmldom.ParseString(raw)
	s.AdoptSessionDoc(doc) //lint:allow credtaint fixture replays a locally journaled snapshot
}
