// Package b takes package a's locks in the opposite order, closing two
// cross-package cycles: MuA/MuB (reported in package a, where the first
// witness edge lives) and MuC/MuD (suppressed at its witness below).
package b

import "lockorder/a"

func BThenA() {
	a.MuB.Lock()
	defer a.MuB.Unlock()
	a.MuA.Lock()
	defer a.MuA.Unlock()
}

func CThenD() {
	a.MuC.Lock()
	defer a.MuC.Unlock()
	a.MuD.Lock() //lint:allow lockorder deliberate inversion kept as a suppression fixture
	defer a.MuD.Unlock()
}

func DThenC() {
	a.MuD.Lock()
	defer a.MuD.Unlock()
	a.MuC.Lock()
	defer a.MuC.Unlock()
}
