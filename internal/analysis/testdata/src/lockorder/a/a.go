// Package a declares the fixture locks and realizes the MuA→MuB
// ordering; package b closes the cycles from the other direction.
package a

import "sync"

var (
	MuA sync.Mutex
	MuB sync.Mutex
	MuC sync.Mutex
	MuD sync.Mutex
)

func AThenB() {
	MuA.Lock()
	defer MuA.Unlock()
	LockB() // want "lock-order cycle a.MuA -> a.MuB -> a.MuA \\(potential deadlock\\).*a.AThenB holds a.MuA and acquires a.MuB via a.LockB"
}

func LockB() {
	MuB.Lock()
	defer MuB.Unlock()
}

// ReentrantStripe acquires the same field twice; instance-insensitive
// analysis must not call a striped/per-entry lock a self-deadlock.
func ReentrantStripe(stripes []*sync.Mutex, i, j int) {
	stripes[i].Lock()
	defer stripes[i].Unlock()
	stripes[j].Lock()
	defer stripes[j].Unlock()
}
