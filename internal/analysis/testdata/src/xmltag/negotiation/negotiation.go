// Package negotiation is the xmltag golden fixture, named after the
// wire-facing package whose documents the rule protects.
package negotiation

import "encoding/xml"

// halfTagged mixes tagged and untagged exported fields: rule 1.
type halfTagged struct {
	ID     string `xml:"id,attr"`
	Issuer string // want "exported field halfTagged.Issuer has no xml tag but sibling fields do"
	note   string // ok: unexported fields never marshal
	Hidden string `xml:"-"` // ok: explicit opt-out
}

// untagged has no tags at all; it is only caught at a marshal site.
type untagged struct {
	Holder string
	Serial int
}

// fullyTagged is clean under both rules.
type fullyTagged struct {
	Holder string `xml:"holder"`
	Serial int    `xml:"serial,attr"`
}

// legacy is untagged on purpose; its marshal site is annotated.
type legacy struct {
	Payload string
}

func roundTrip(enc *xml.Encoder, data []byte) error {
	if err := enc.Encode(&fullyTagged{}); err != nil { // ok
		return err
	}
	var u untagged
	if err := xml.Unmarshal(data, &u); err != nil { // want "untagged is serialized with encoding/xml but exported field Holder has no xml tag" "untagged is serialized with encoding/xml but exported field Serial has no xml tag"
		return err
	}
	out, err := xml.Marshal([]untagged{}) // ok: fields already reported above
	_ = out
	_ = halfTagged{note: ""}
	return err
}

// allowedMarshal keeps a legacy schema as-is, with the escape hatch.
func allowedMarshal() ([]byte, error) {
	//lint:allow xmltag legacy schema kept as-is
	return xml.Marshal(&legacy{})
}
