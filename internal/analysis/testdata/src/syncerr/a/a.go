// Package a is the syncerr golden fixture.
package a

import "os"

type flushable struct{}

func (flushable) Sync() error { return nil }

type notifier struct{}

// Sync here takes an argument: not an fsync-shaped method.
func (notifier) Sync(force bool) error { _ = force; return nil }

type voidSync struct{}

// Sync here returns nothing: no error to discard.
func (voidSync) Sync() {}

func discards(f *os.File, fl flushable) {
	f.Sync()       // want "statement discards the error from f.Sync\\(\\)"
	fl.Sync()      // want "statement discards the error from fl.Sync\\(\\)"
	_ = f.Sync()   // want "blank assignment discards the error from f.Sync\\(\\)"
	defer f.Sync() // want "defer discards the error from f.Sync\\(\\)"
	go fl.Sync()   // want "go discards the error from fl.Sync\\(\\)"
}

func checked(f *os.File, fl flushable) error {
	if err := f.Sync(); err != nil {
		return err
	}
	err := fl.Sync()
	return err
}

func notFsyncShaped(n notifier, v voidSync) {
	n.Sync(true)
	v.Sync()
}

func deliberate(f *os.File) {
	f.Sync() //lint:allow syncerr best-effort flush on a diagnostics path
}
