package analysis_test

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"trustvo/internal/analysis"
)

// One loader (and thus one stdlib source-import pass) serves every
// golden package in this test binary.
var (
	loaderOnce sync.Once
	goldLoader *analysis.Loader
	loaderErr  error
)

func testLoader(t *testing.T) *analysis.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		abs, err := filepath.Abs(filepath.Join("testdata", "src"))
		if err != nil {
			loaderErr = err
			return
		}
		goldLoader = analysis.NewLoader()
		goldLoader.AddRoot("", abs)
	})
	if loaderErr != nil {
		t.Fatalf("testdata root: %v", loaderErr)
	}
	return goldLoader
}

// only returns a fresh suite narrowed to one analyzer; fresh because
// metricname carries module-wide state between runs.
func only(t *testing.T, name string) []*analysis.Analyzer {
	t.Helper()
	suite, err := analysis.Select(analysis.Suite(), []string{name}, nil)
	if err != nil {
		t.Fatalf("select %s: %v", name, err)
	}
	if len(suite) != 1 {
		t.Fatalf("select %s: got %d analyzers", name, len(suite))
	}
	return suite
}

func TestGolden(t *testing.T) {
	cases := []struct {
		analyzer string
		paths    []string
	}{
		{"ctxpropagate", []string{"ctxpropagate/wsrpc"}},
		{"ctxpropagate", []string{"ctxpropagate/mainpkg"}},
		{"ctxpropagate", []string{"ctxpropagate/cluster"}},
		{"errwrap", []string{"errwrap/a"}},
		{"metricname", []string{"metricname/a"}},
		{"xmltag", []string{"xmltag/negotiation"}},
		{"nakedlock", []string{"nakedlock/a"}},
		{"nakedlock", []string{"nakedlock/clustershape"}},
		{"syncerr", []string{"syncerr/a"}},
		{"lockorder", []string{"lockorder/a", "lockorder/b"}},
		{"goroleak", []string{"goroleak/a"}},
		{"credtaint", []string{"credtaint/a"}},
		{"atomicmix", []string{"atomicmix/a"}},
	}
	for _, c := range cases {
		t.Run(c.paths[0], func(t *testing.T) {
			analysis.RunGoldenPkgs(t, testLoader(t), c.paths, only(t, c.analyzer)...)
		})
	}
}

func TestSelect(t *testing.T) {
	if _, err := analysis.Select(analysis.Suite(), []string{"nosuch"}, nil); err == nil {
		t.Fatal("Select accepted an unknown -only analyzer")
	}
	if _, err := analysis.Select(analysis.Suite(), nil, []string{"nosuch"}); err == nil {
		t.Fatal("Select accepted an unknown -skip analyzer")
	}
	rest, err := analysis.Select(analysis.Suite(), nil, []string{"nakedlock", "errwrap"})
	if err != nil {
		t.Fatalf("skip: %v", err)
	}
	if len(rest) != len(analysis.Suite())-2 {
		t.Fatalf("skip left %d analyzers", len(rest))
	}
	for _, a := range rest {
		if a.Name == "nakedlock" || a.Name == "errwrap" {
			t.Fatalf("skipped analyzer %s still present", a.Name)
		}
	}
}

// TestFindingJSONRoundTrip runs the full suite over a fixture with
// known findings and checks they survive a JSON encode/decode cycle —
// the contract cmd/vetvo -json exposes to CI tooling.
func TestFindingJSONRoundTrip(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.Load("nakedlock/a")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, analysis.Suite())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings")
	}
	for _, f := range findings {
		if f.Analyzer != "nakedlock" {
			t.Errorf("unexpected analyzer in fixture findings: %s", f)
		}
	}
	data, err := json.Marshal(findings)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back []analysis.Finding
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(findings, back) {
		t.Fatalf("round trip changed findings:\n got %+v\nwant %+v", back, findings)
	}
}

// TestSuppression checks the lint:allow directive end to end: the same
// package analyzed with nakedlock has its annotated site suppressed
// but the unannotated ones reported.
func TestSuppression(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.Load("nakedlock/a")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, analysis.Suite())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range findings {
		if f.Line == 0 {
			t.Errorf("finding with no position: %s", f)
		}
	}
	// The fixture has exactly six flagged naked locks; the annotated
	// seventh must not appear.
	if len(findings) != 6 {
		t.Fatalf("got %d findings, want 6 (allow directive not honored?):\n%v", len(findings), findings)
	}
}
