package analysis

import (
	"go/ast"
	"go/types"
)

// ctxpropagate enforces the PR-2 transport invariant: cancellation
// flows from the caller down every network path.
//
//   - context.Background() / context.TODO() are reserved for package
//     main (and tests, which the loader never analyzes); a library that
//     conjures its own root context breaks deadline propagation.
//   - A context.Context parameter must come first, everywhere.
//   - In the network-facing packages (wsrpc, negotiation), an exported
//     function that calls context-aware code must itself accept a
//     context (HTTP handlers are exempt: they derive one from
//     *http.Request), and a context parameter it declares must actually
//     be used.
func ctxpropagate() *Analyzer {
	a := &Analyzer{
		Name: "ctxpropagate",
		Doc:  "context.Background/TODO only in package main; ctx params first, present on exported network paths, and passed down",
	}
	a.Run = func(p *Pass) error {
		info := p.Pkg.TypesInfo
		isMain := p.Pkg.Name == "main"
		netPkg := pkgPathHasSuffix(p.Pkg.Path, "wsrpc") || pkgPathHasSuffix(p.Pkg.Path, "negotiation") || pkgPathHasSuffix(p.Pkg.Path, "cluster")
		for _, file := range p.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if fn := callee(info, n); !isMain && isPkgFunc(fn, "context", "Background", "TODO") {
						p.Reportf(n.Pos(), "context.%s is reserved for package main and tests; accept a context.Context from the caller", fn.Name())
					}
				case *ast.FuncDecl:
					checkFuncDecl(p, info, n, isMain, netPkg)
				}
				return true
			})
		}
		return nil
	}
	return a
}

func checkFuncDecl(p *Pass, info *types.Info, fd *ast.FuncDecl, isMain, netPkg bool) {
	ctxIdents, paramIndex := contextParams(info, fd.Type)
	if paramIndex > 0 {
		p.Reportf(fd.Name.Pos(), "%s: context.Context parameter must come first", fd.Name.Name)
	}
	if !netPkg || isMain || !fd.Name.IsExported() || fd.Body == nil {
		return
	}
	if paramIndex < 0 {
		if hasRequestParam(info, fd.Type) {
			return // handlers reach the context through *http.Request
		}
		if callee := firstContextAwareCall(info, fd.Body); callee != "" {
			p.Reportf(fd.Name.Pos(), "exported %s calls context-aware %s but takes no context.Context", fd.Name.Name, callee)
		}
		return
	}
	for _, id := range ctxIdents {
		if id.Name == "_" {
			p.Reportf(id.Pos(), "exported %s discards its context parameter; pass it down", fd.Name.Name)
			continue
		}
		obj := info.Defs[id]
		if obj != nil && !identUsed(info, fd.Body, obj) {
			p.Reportf(id.Pos(), "exported %s never uses its context parameter; pass it down", fd.Name.Name)
		}
	}
}

// contextParams returns the names of context.Context parameters and the
// index of the first one (-1 when absent).
func contextParams(info *types.Info, ft *ast.FuncType) (idents []*ast.Ident, first int) {
	first = -1
	index := 0
	if ft.Params == nil {
		return nil, first
	}
	for _, field := range ft.Params.List {
		t := info.Types[field.Type].Type
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if t != nil && isContextType(t) {
			if first < 0 {
				first = index
			}
			idents = append(idents, field.Names...)
		}
		index += n
	}
	return idents, first
}

// hasRequestParam reports whether the signature takes a *http.Request.
func hasRequestParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := info.Types[field.Type].Type
		ptr, ok := t.(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request" {
			return true
		}
	}
	return false
}

// firstContextAwareCall returns the rendered name of the first call in
// body whose callee's signature takes a context.Context, skipping the
// context package itself (whose constructors are reported separately).
func firstContextAwareCall(info *types.Info, body *ast.BlockStmt) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(info, call)
		if fn == nil || (fn.Pkg() != nil && fn.Pkg().Path() == "context") {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); ok && signatureTakesContext(sig) {
			found = fn.Name()
			return false
		}
		return true
	})
	return found
}

// identUsed reports whether obj is referenced anywhere inside body.
func identUsed(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}
