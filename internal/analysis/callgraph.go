package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// The call graph is the interprocedural backbone: one node per function
// body loaded anywhere in the module (declared functions and methods,
// plus synthetic nodes for function literals), with call resolution
// covering direct calls, method calls, method values bound to locals,
// function-typed struct fields and package variables (hook patterns like
// TNService.OnSessionUpdate), and interface dispatch approximated by the
// type set of all loaded named types. Calls into packages outside the
// loader roots (the stdlib) have no node and resolve to nothing — the
// summary layer models the few stdlib effects that matter (sync, time,
// crypto) directly.

// FuncNode is one function body in the call graph. Exactly one of Fn
// (a declared function or method, always its generic Origin) and Lit
// (a function literal) is set.
type FuncNode struct {
	Fn   *types.Func
	Lit  *ast.FuncLit
	Pkg  *Package
	Body *ast.BlockStmt

	name string
	pos  token.Pos
}

// Name returns a stable display name: pkg.Func, pkg.Type.Method, or
// pkg.func@file:line for literals.
func (n *FuncNode) Name() string { return n.name }

// Pos returns the position of the function's declaration or literal.
func (n *FuncNode) Pos() token.Pos { return n.pos }

func (n *FuncNode) String() string { return n.name }

// CallGraph indexes every function body in the loaded packages and
// resolves call expressions to their possible targets.
type CallGraph struct {
	// Nodes lists every function body in deterministic (position) order.
	Nodes []*FuncNode

	funcs map[*types.Func]*FuncNode   // declared (Origin) → node
	lits  map[*ast.FuncLit]*FuncNode  // literal → node
	named []*types.Named              // all loaded named types, for dispatch
	impls map[*types.Func][]*FuncNode // interface method → implementations
	// fieldFuncs maps function-typed struct fields and package-level
	// variables to the function values ever assigned to them anywhere in
	// the module — how hook calls (s.OnCommit(...)) get targets.
	fieldFuncs map[types.Object][]*FuncNode
	// calls caches each node's resolved outgoing call targets (filled by
	// the summary builder, which walks every body exactly once).
	calls map[*FuncNode][]*FuncNode
}

func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		funcs:      make(map[*types.Func]*FuncNode),
		lits:       make(map[*ast.FuncLit]*FuncNode),
		impls:      make(map[*types.Func][]*FuncNode),
		fieldFuncs: make(map[types.Object][]*FuncNode),
		calls:      make(map[*FuncNode][]*FuncNode),
	}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if named, ok := tn.Type().(*types.Named); ok {
					g.named = append(g.named, named)
				}
			}
		}
		for _, file := range pkg.Files {
			g.indexFile(pkg, file)
		}
	}
	sort.Slice(g.Nodes, func(i, j int) bool {
		a := g.Nodes[i].Pkg.Fset.Position(g.Nodes[i].pos)
		b := g.Nodes[j].Pkg.Fset.Position(g.Nodes[j].pos)
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			g.indexFuncValues(pkg, file)
		}
	}
	return g
}

// indexFile creates nodes for every function declaration and literal.
func (g *CallGraph) indexFile(pkg *Package, file *ast.File) {
	ast.Inspect(file, func(an ast.Node) bool {
		switch n := an.(type) {
		case *ast.FuncDecl:
			if n.Body == nil {
				return true
			}
			fn, ok := pkg.TypesInfo.Defs[n.Name].(*types.Func)
			if !ok {
				return true
			}
			node := &FuncNode{Fn: fn, Pkg: pkg, Body: n.Body, name: funcDisplayName(fn), pos: n.Pos()}
			g.funcs[fn.Origin()] = node
			g.Nodes = append(g.Nodes, node)
		case *ast.FuncLit:
			pos := pkg.Fset.Position(n.Pos())
			name := fmt.Sprintf("%s.func@%s:%d", pkg.Name, filepath.Base(pos.Filename), pos.Line)
			node := &FuncNode{Lit: n, Pkg: pkg, Body: n.Body, name: name, pos: n.Pos()}
			g.lits[n] = node
			g.Nodes = append(g.Nodes, node)
		}
		return true
	})
}

// indexFuncValues records function values assigned to struct fields and
// package-level variables, in assignments, composite literals, and var
// declarations — the module's callback/hook wiring.
func (g *CallGraph) indexFuncValues(pkg *Package, file *ast.File) {
	info := pkg.TypesInfo
	record := func(obj types.Object, rhs ast.Expr) {
		v, ok := obj.(*types.Var)
		if !ok || (!v.IsField() && v.Parent() != pkg.Types.Scope()) {
			return
		}
		for _, t := range g.staticValueTargets(pkg, rhs) {
			g.fieldFuncs[v] = appendUnique(g.fieldFuncs[v], t)
		}
	}
	ast.Inspect(file, func(an ast.Node) bool {
		switch n := an.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				switch l := lhs.(type) {
				case *ast.Ident:
					record(info.Uses[l], n.Rhs[i])
				case *ast.SelectorExpr:
					record(info.Uses[l.Sel], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, name := range n.Names {
				record(info.Defs[name], n.Values[i])
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				record(info.Uses[key], kv.Value)
			}
		}
		return true
	})
}

// staticValueTargets resolves an expression used as a function value —
// a function name, a method value, or a literal — to graph nodes.
func (g *CallGraph) staticValueTargets(pkg *Package, expr ast.Expr) []*FuncNode {
	switch e := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		if n := g.lits[e]; n != nil {
			return []*FuncNode{n}
		}
	case *ast.Ident:
		if fn, ok := pkg.TypesInfo.Uses[e].(*types.Func); ok {
			return g.declared(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.TypesInfo.Uses[e.Sel].(*types.Func); ok {
			if iface := ifaceOfRecv(fn); iface != nil {
				return g.implementers(fn, iface)
			}
			return g.declared(fn)
		}
	}
	return nil
}

// resolveCall returns the possible callee bodies of a call expression.
// locals carries the enclosing function's tracked function-value
// bindings (f := x.Method; f()); nil is fine.
func (g *CallGraph) resolveCall(pkg *Package, call *ast.CallExpr, locals map[types.Object][]*FuncNode) []*FuncNode {
	info := pkg.TypesInfo
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		if n := g.lits[fun]; n != nil {
			return []*FuncNode{n}
		}
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			return g.declared(obj)
		case *types.Var:
			if ts := locals[obj]; ts != nil {
				return ts
			}
			return g.fieldFuncs[obj]
		}
	case *ast.SelectorExpr:
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			if iface := ifaceOfRecv(obj); iface != nil {
				return g.implementers(obj, iface)
			}
			return g.declared(obj)
		case *types.Var:
			return g.fieldFuncs[obj]
		}
	}
	return nil
}

func (g *CallGraph) declared(fn *types.Func) []*FuncNode {
	if n := g.funcs[fn.Origin()]; n != nil {
		return []*FuncNode{n}
	}
	return nil
}

// ifaceOfRecv returns the interface a method call dispatches through:
// the receiver's interface type, or a type parameter's constraint
// interface (so calls inside generic functions dispatch over the
// constraint's type set). Nil for concrete methods and plain functions.
func ifaceOfRecv(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if tp, ok := t.(*types.TypeParam); ok {
		if iface, ok := tp.Constraint().Underlying().(*types.Interface); ok {
			return iface
		}
		return nil
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		return iface
	}
	return nil
}

// implementers approximates dynamic dispatch by the loaded type set:
// every named non-interface type (or its pointer) implementing the
// interface contributes its method of the same name.
func (g *CallGraph) implementers(m *types.Func, iface *types.Interface) []*FuncNode {
	if cached, ok := g.impls[m.Origin()]; ok {
		return cached
	}
	var out []*FuncNode
	for _, named := range g.named {
		if types.IsInterface(named) || named.TypeParams().Len() > 0 {
			continue
		}
		var impl types.Type
		switch {
		case implementsIface(named, iface):
			impl = named
		case implementsIface(types.NewPointer(named), iface):
			impl = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			if n := g.funcs[fn.Origin()]; n != nil {
				out = appendUnique(out, n)
			}
		}
	}
	g.impls[m.Origin()] = out
	return out
}

func implementsIface(v types.Type, iface *types.Interface) bool {
	if iface.IsMethodSet() {
		return types.Implements(v, iface)
	}
	return types.Satisfies(v, iface)
}

// NodeByName finds a node by its display name (test hook; nil when
// absent or ambiguous names shadow each other — first position wins).
func (g *CallGraph) NodeByName(name string) *FuncNode {
	for _, n := range g.Nodes {
		if n.name == name {
			return n
		}
	}
	return nil
}

// NodeOf returns the node for a declared function (its generic Origin).
func (g *CallGraph) NodeOf(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return g.funcs[fn.Origin()]
}

// Calls returns a node's resolved outgoing call targets (calls, defers,
// and go statements alike), deduplicated, in first-call order.
func (g *CallGraph) Calls(n *FuncNode) []*FuncNode {
	return g.calls[n]
}

func (g *CallGraph) addCall(from *FuncNode, targets []*FuncNode) {
	for _, t := range targets {
		g.calls[from] = appendUnique(g.calls[from], t)
	}
}

func appendUnique(list []*FuncNode, n *FuncNode) []*FuncNode {
	for _, have := range list {
		if have == n {
			return list
		}
	}
	return append(list, n)
}

// funcDisplayName renders pkg.Func or pkg.Type.Method.
func funcDisplayName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		switch t := t.(type) {
		case *types.Named:
			name = t.Obj().Name() + "." + name
		case *types.TypeParam:
			name = t.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}
