package partydb

import (
	"path/filepath"
	"testing"
	"time"

	"trustvo/internal/negotiation"
	"trustvo/internal/ontology"
	"trustvo/internal/pki"
	"trustvo/internal/store"
	"trustvo/internal/xtnl"
)

func fixtureParty(t testing.TB) (*negotiation.Party, *pki.Authority) {
	t.Helper()
	ca := pki.MustNewAuthority("CertCA")
	prof := xtnl.NewProfile("AerospaceCo")
	prof.Add(
		ca.MustIssue(pki.IssueRequest{
			Type: "WebDesignerQuality", Holder: "AerospaceCo",
			Attributes: []xtnl.Attribute{{Name: "regulation", Value: "UNI EN ISO 9000"}},
		}),
		ca.MustIssue(pki.IssueRequest{Type: "AAAMember", Holder: "AerospaceCo"}),
	)
	o := ontology.New()
	o.MustAdd(&ontology.Concept{Name: "quality-certification",
		Implementations: []ontology.Implementation{{CredType: "WebDesignerQuality"}}})
	return &negotiation.Party{
		Name:     "AerospaceCo",
		Profile:  prof,
		Policies: xtnl.MustPolicySet(xtnl.MustParsePolicies("WebDesignerQuality <- AAAccreditation")...),
		Trust:    pki.NewTrustStore(ca),
		Mapper:   &ontology.Mapper{Ontology: o, Profile: prof},
	}, ca
}

func TestSaveLoadPartyRoundTrip(t *testing.T) {
	p, ca := fixtureParty(t)
	db := store.New()
	if err := SaveParty(db, p); err != nil {
		t.Fatal(err)
	}
	re, err := LoadParty(db, &negotiation.Party{Name: "AerospaceCo", Trust: p.Trust})
	if err != nil {
		t.Fatal(err)
	}
	if re.Profile.Len() != 2 {
		t.Fatalf("profile = %d credentials", re.Profile.Len())
	}
	if re.Policies.Len() != 1 {
		t.Fatalf("policies = %d", re.Policies.Len())
	}
	if re.Mapper == nil || re.Mapper.Ontology.Len() != 1 {
		t.Fatal("ontology lost")
	}
	// reloaded credentials still verify (signature survived storage)
	for _, c := range re.Profile.All() {
		if err := pki.NewTrustStore(ca).Verify(c, time.Now()); err != nil {
			t.Fatalf("credential %s: %v", c.ID, err)
		}
	}
	// and the reloaded party can still negotiate
	ctl := &negotiation.Party{
		Name:    "AircraftCo",
		Profile: xtnl.NewProfile("AircraftCo"),
		Policies: xtnl.MustPolicySet(xtnl.MustParsePolicies(
			"R <- WebDesignerQuality(regulation='UNI EN ISO 9000')")...),
		Trust: pki.NewTrustStore(ca),
	}
	ctl.Profile.Add(ca.MustIssue(pki.IssueRequest{Type: "AAAccreditation", Holder: "AircraftCo"}))
	out, _, err := negotiation.Run(re, ctl, "R")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Succeeded {
		t.Fatalf("negotiation with reloaded party failed: %s", out.Reason)
	}
}

func TestOwnersIsolated(t *testing.T) {
	db := store.New()
	ca := pki.MustNewAuthority("CA")
	for _, owner := range []string{"a", "b"} {
		p := xtnl.NewProfile(owner)
		p.Add(ca.MustIssue(pki.IssueRequest{Type: "T-" + owner, Holder: owner}))
		if err := SaveProfile(db, p); err != nil {
			t.Fatal(err)
		}
	}
	a, err := LoadProfile(db, "a")
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1 || a.All()[0].Type != "T-a" {
		t.Fatalf("owner isolation broken: %+v", a.All())
	}
	empty, err := LoadProfile(db, "nobody")
	if err != nil || empty.Len() != 0 {
		t.Fatalf("unknown owner: %d creds, %v", empty.Len(), err)
	}
}

func TestPoliciesProtecting(t *testing.T) {
	db := store.New()
	ps := xtnl.MustPolicySet(xtnl.MustParsePolicies(`
R1 <- A | B
R2 <- C
`)...)
	if err := SavePolicies(db, "owner", ps); err != nil {
		t.Fatal(err)
	}
	got, err := PoliciesProtecting(db, "owner", "R1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("R1 alternatives = %d", len(got))
	}
	got, err = PoliciesProtecting(db, "owner", "R3")
	if err != nil || len(got) != 0 {
		t.Fatalf("unknown resource: %d, %v", len(got), err)
	}
}

func TestSaveProfileRequiresIDs(t *testing.T) {
	db := store.New()
	p := xtnl.NewProfile("x")
	p.Add(&xtnl.Credential{Type: "T"}) // no ID
	if err := SaveProfile(db, p); err == nil {
		t.Fatal("ID-less credential accepted")
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "party.wal")
	db, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := fixtureParty(t)
	if err := SaveParty(db, p); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	re, err := LoadParty(db2, &negotiation.Party{Name: "AerospaceCo"})
	if err != nil {
		t.Fatal(err)
	}
	if re.Profile.Len() != 2 || re.Policies.Len() != 1 {
		t.Fatalf("state lost across reopen: %d creds, %d policies", re.Profile.Len(), re.Policies.Len())
	}
}

// TestDurableSurvivesUncleanShutdown saves a party and a resume ticket
// through a durable store and reopens the path WITHOUT closing the
// first handle — the process-died case. Every acknowledged write must
// come back: SaveResumeTicket in particular is the crash-recovery
// hand-off (tnserve persists suspended negotiations through it), so a
// ticket lost here is a negotiation the next run cannot resume.
func TestDurableSurvivesUncleanShutdown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "party.wal")
	db, err := store.OpenDurable(path)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := fixtureParty(t)
	if err := SaveParty(db, p); err != nil {
		t.Fatal(err)
	}
	ticket := &negotiation.ResumeTicket{
		NegID:    "neg-42",
		Resource: "DesignPortal",
		Seq:      3,
		Expires:  time.Now().Add(time.Hour).UTC().Truncate(time.Second),
	}
	if err := SaveResumeTicket(db, "AerospaceCo", ticket); err != nil {
		t.Fatal(err)
	}
	// no db.Close(): recovery must work from what fsync already made
	// durable, not from a clean shutdown path.

	db2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	re, err := LoadParty(db2, &negotiation.Party{Name: "AerospaceCo"})
	if err != nil {
		t.Fatal(err)
	}
	if re.Profile.Len() != 2 || re.Policies.Len() != 1 {
		t.Fatalf("acked party state lost: %d creds, %d policies", re.Profile.Len(), re.Policies.Len())
	}
	tickets, err := LoadResumeTickets(db2, "AerospaceCo", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(tickets) != 1 || tickets[0].NegID != "neg-42" || tickets[0].Seq != 3 {
		t.Fatalf("resume ticket lost or corrupt: %+v", tickets)
	}
	db.Close()
}

func TestLoadOntologyAbsent(t *testing.T) {
	db := store.New()
	o, err := LoadOntology(db, "nobody")
	if err != nil || o != nil {
		t.Fatalf("absent ontology: %v, %v", o, err)
	}
}
