// Package partydb persists a negotiation party's X-Profile, disclosure
// policies and ontology in the embedded document store (internal/store),
// reproducing the paper's database-backed TN service: "StartNegotiation …
// opens the connection with [the] Oracle database containing the
// disclosure policies and credentials of the invoker" (§6.2), and
// "PolicyExchange checks if the database contains disclosure policies
// protecting the credentials requested".
//
// Documents are stored under three kinds:
//
//	credential/<owner>/<credID>   Fig. 6 credential documents
//	policy/<owner>/<polID>        Fig. 7 policy documents
//	ontology/<owner>              OWL-sketch ontology documents
//
// The package is durability-agnostic — it writes through whatever
// *store.Store it is given — but the servers (cmd/tnserve, voctl serve)
// open their stores with store.OpenDurable, so every Save here is on
// stable storage once it returns. SaveResumeTicket additionally calls
// Sync itself: a resume ticket is written precisely because the process
// may die next, so it must not wait in an OS cache.
package partydb

import (
	"fmt"
	"strconv"
	"time"

	"trustvo/internal/negotiation"
	"trustvo/internal/ontology"
	"trustvo/internal/store"
	"trustvo/internal/xtnl"
)

// Kinds used in the store.
const (
	KindCredential = "credential"
	KindPolicy     = "policy"
	KindOntology   = "ontology"
	// KindResumeTicket holds suspended-negotiation resume tickets
	// (negotiation.ResumeTicket), keyed <owner>/<negID>, so an
	// interrupted party survives a process restart and still resumes.
	KindResumeTicket = "resume"
)

func credKey(owner, id string) string { return owner + "/" + id }

// Reader is the read surface the Load functions need. Both *store.Store
// and *cacher.Cache satisfy it, so a TN server can route its hot party
// reloads through the coalescing cache while the write path (and
// LoadResumeTickets, which deletes expired tickets as it reads) keeps
// talking to the store directly. Records obtained through a Reader are
// treated as read-only, which is exactly the contract the cache's shared
// records demand.
type Reader interface {
	Get(kind, key string) (*store.Record, error)
	List(kind string) []*store.Record
}

// SaveProfile writes every credential of the profile.
func SaveProfile(db *store.Store, p *xtnl.Profile) error {
	for _, c := range p.All() {
		if c.ID == "" {
			return fmt.Errorf("partydb: credential of type %q has no ID", c.Type)
		}
		if err := db.Put(KindCredential, credKey(p.Owner, c.ID), c.DOM()); err != nil {
			return err
		}
	}
	return nil
}

// LoadProfile reads the owner's credentials back into an X-Profile.
func LoadProfile(db Reader, owner string) (*xtnl.Profile, error) {
	p := xtnl.NewProfile(owner)
	prefix := owner + "/"
	for _, rec := range db.List(KindCredential) {
		if len(rec.Key) <= len(prefix) || rec.Key[:len(prefix)] != prefix {
			continue
		}
		doc, err := rec.Doc()
		if err != nil {
			return nil, err
		}
		c, err := xtnl.CredentialFromDOM(doc)
		if err != nil {
			return nil, fmt.Errorf("partydb: credential %s: %w", rec.Key, err)
		}
		p.Add(c)
	}
	return p, nil
}

// SavePolicies writes every policy of the set, assigning sequential IDs
// to policies that lack one.
func SavePolicies(db *store.Store, owner string, ps *xtnl.PolicySet) error {
	for i, pol := range ps.All() {
		id := pol.ID
		if id == "" {
			id = "pol-" + strconv.Itoa(i)
		}
		if err := db.Put(KindPolicy, credKey(owner, id), pol.DOM()); err != nil {
			return err
		}
	}
	return nil
}

// LoadPolicies reads the owner's disclosure policies.
func LoadPolicies(db Reader, owner string) (*xtnl.PolicySet, error) {
	ps, _ := xtnl.NewPolicySet()
	prefix := owner + "/"
	for _, rec := range db.List(KindPolicy) {
		if len(rec.Key) <= len(prefix) || rec.Key[:len(prefix)] != prefix {
			continue
		}
		doc, err := rec.Doc()
		if err != nil {
			return nil, err
		}
		pol, err := xtnl.PolicyFromDOM(doc)
		if err != nil {
			return nil, fmt.Errorf("partydb: policy %s: %w", rec.Key, err)
		}
		if err := ps.Add(pol); err != nil {
			return nil, err
		}
	}
	return ps, nil
}

// SaveOntology writes the owner's local ontology.
func SaveOntology(db *store.Store, owner string, o *ontology.Ontology) error {
	return db.Put(KindOntology, owner, o.DOM())
}

// LoadOntology reads the owner's local ontology; it returns (nil, nil)
// when none is stored.
func LoadOntology(db Reader, owner string) (*ontology.Ontology, error) {
	rec, err := db.Get(KindOntology, owner)
	if err != nil {
		return nil, nil // not stored
	}
	return ontology.ParseOntology(rec.XML)
}

// SaveParty persists the party's negotiation state (profile, policies
// and — when present — ontology).
func SaveParty(db *store.Store, p *negotiation.Party) error {
	if err := SaveProfile(db, p.Profile); err != nil {
		return err
	}
	if err := SavePolicies(db, p.Name, p.Policies); err != nil {
		return err
	}
	if p.Mapper != nil {
		return SaveOntology(db, p.Name, p.Mapper.Ontology)
	}
	return nil
}

// LoadParty rebuilds a party's negotiation state from the store. Trust
// anchors, keys and hooks are not stored (they come from configuration),
// so the caller passes a template carrying them; the returned party has
// the template's identity fields with the stored profile, policies and
// ontology.
func LoadParty(db Reader, template *negotiation.Party) (*negotiation.Party, error) {
	p := *template
	var err error
	if p.Profile, err = LoadProfile(db, template.Name); err != nil {
		return nil, err
	}
	if p.Policies, err = LoadPolicies(db, template.Name); err != nil {
		return nil, err
	}
	o, err := LoadOntology(db, template.Name)
	if err != nil {
		return nil, err
	}
	if o != nil {
		p.Mapper = &ontology.Mapper{Ontology: o, Profile: p.Profile}
	}
	return &p, nil
}

// SaveResumeTicket persists a suspended negotiation's resume ticket.
func SaveResumeTicket(db *store.Store, owner string, t *negotiation.ResumeTicket) error {
	if t.NegID == "" {
		return fmt.Errorf("partydb: resume ticket without negotiation id")
	}
	if err := db.Put(KindResumeTicket, credKey(owner, t.NegID), t.DOM()); err != nil {
		return err
	}
	return db.Sync()
}

// LoadResumeTickets reads the owner's stored resume tickets, dropping
// expired ones from the store as a side effect.
func LoadResumeTickets(db *store.Store, owner string, now time.Time) ([]*negotiation.ResumeTicket, error) {
	prefix := owner + "/"
	var out []*negotiation.ResumeTicket
	for _, rec := range db.List(KindResumeTicket) {
		if len(rec.Key) <= len(prefix) || rec.Key[:len(prefix)] != prefix {
			continue
		}
		doc, err := rec.Doc()
		if err != nil {
			return nil, err
		}
		t, err := negotiation.ResumeTicketFromDOM(doc)
		if err != nil {
			return nil, fmt.Errorf("partydb: resume ticket %s: %w", rec.Key, err)
		}
		if now.After(t.Expires) {
			db.Delete(KindResumeTicket, rec.Key)
			continue
		}
		out = append(out, t)
	}
	return out, nil
}

// DeleteResumeTicket removes a consumed (or abandoned) resume ticket.
func DeleteResumeTicket(db *store.Store, owner, negID string) error {
	return db.Delete(KindResumeTicket, credKey(owner, negID))
}

// PoliciesProtecting returns the stored policies of owner whose resource
// equals the requested credential type — the PolicyExchange lookup of
// §6.2 ("checks if the database contains disclosure policies protecting
// the credentials requested in the counterpart's disclosure policies").
func PoliciesProtecting(db Reader, owner, resource string) ([]*xtnl.Policy, error) {
	ps, err := LoadPolicies(db, owner)
	if err != nil {
		return nil, err
	}
	return ps.For(resource), nil
}
