// Package negotiation implements the Trust-X trust negotiation engine
// (paper §4.2): the bilateral policy-evaluation phase over a shared
// negotiation tree (simple edges, multiedges, views), trust-sequence
// extraction, and the credential-exchange phase, under the four
// negotiation strategies the prototype supports (§6.2): trusting,
// standard, suspicious and strong suspicious.
//
// Two parties participate: the requester, who wants a resource, and the
// controller, who owns it. Each party is represented by a Party value
// (profile, disclosure policies, trust store, optional ontology mapper)
// and each live negotiation by an Endpoint — a message-driven state
// machine. Endpoints exchange Message values; Run wires two endpoints
// directly for in-process negotiations, while internal/wsrpc transports
// the same messages over HTTP as the paper's TN web service does.
package negotiation

import (
	"fmt"
	"strings"
)

// Strategy selects the confidentiality/efficiency trade-off of a party
// (§6.2: "the standard, the strong suspicious, the suspicious and the
// trusting negotiation strategies").
type Strategy int

const (
	// Standard (the zero value) runs the two clean Trust-X phases: full
	// policy evaluation first, then credential exchange along the agreed
	// trust sequence.
	Standard Strategy = iota
	// Trusting discloses unprotected credentials eagerly, piggybacked on
	// the policy-evaluation phase — fewest rounds, least confidentiality.
	Trusting
	// Suspicious additionally demands ownership proofs for every
	// received credential and disclosures reveal only the attributes the
	// counterpart's conditions actually reference, which requires
	// credentials supporting selective disclosure (§6.3: with plain
	// X.509-style credentials this strategy cannot be adopted).
	Suspicious
	// StrongSuspicious further hides the party's policy structure by
	// answering a single requirement per message instead of batching.
	StrongSuspicious
)

// String returns the wire label of the strategy.
func (s Strategy) String() string {
	switch s {
	case Trusting:
		return "trusting"
	case Standard:
		return "standard"
	case Suspicious:
		return "suspicious"
	case StrongSuspicious:
		return "strong-suspicious"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy converts a wire label to a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "trusting":
		return Trusting, nil
	case "standard", "":
		return Standard, nil
	case "suspicious":
		return Suspicious, nil
	case "strong-suspicious", "strong_suspicious", "strongsuspicious":
		return StrongSuspicious, nil
	default:
		return Standard, fmt.Errorf("negotiation: unknown strategy %q", s)
	}
}

// RequiresOwnershipProof reports whether a party using this strategy
// demands challenge/response ownership proofs on received credentials.
func (s Strategy) RequiresOwnershipProof() bool { return s >= Suspicious }

// RequiresSelectiveDisclosure reports whether disclosures must partially
// hide credential content (§6.3 restriction).
func (s Strategy) RequiresSelectiveDisclosure() bool { return s >= Suspicious }

// OneAnswerPerMessage reports whether policy answers are paced one per
// message to hide policy structure.
func (s Strategy) OneAnswerPerMessage() bool { return s == StrongSuspicious }

// EagerDisclosure reports whether unprotected credentials are disclosed
// during the policy-evaluation phase.
func (s Strategy) EagerDisclosure() bool { return s == Trusting }
