package negotiation

import (
	"strings"
	"testing"
	"time"

	"trustvo/internal/ontology"
	"trustvo/internal/pki"
	"trustvo/internal/xtnl"
)

// fixture builds the §5.1 formation scenario: the Aerospace company
// requests a VoMembership from the Aircraft company.
//
//	AircraftCo policy:  VoMembership <- WebDesignerQuality(regulation='UNI EN ISO 9000')
//	AerospaceCo policy: WebDesignerQuality <- AAAccreditation | BalanceSheet(issuer='BBB')
//	AircraftCo holds an unprotected AAAccreditation credential.
type fixture struct {
	qualityCA *pki.Authority // issues WebDesignerQuality
	aaaCA     *pki.Authority // issues AAAccreditation (the "American Aircraft associations")
	bbbCA     *pki.Authority // issues BalanceSheet certifications

	aerospace *Party
	aircraft  *Party

	aerospaceKeys *pki.KeyPair
	aircraftKeys  *pki.KeyPair

	wdqCred *xtnl.Credential // aerospace's quality credential
	aaaCred *xtnl.Credential // aircraft's accreditation
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	f := &fixture{
		qualityCA:     pki.MustNewAuthority("QualityCA"),
		aaaCA:         pki.MustNewAuthority("AAA"),
		bbbCA:         pki.MustNewAuthority("BBB"),
		aerospaceKeys: pki.MustGenerateKeyPair(),
		aircraftKeys:  pki.MustGenerateKeyPair(),
	}
	f.wdqCred = f.qualityCA.MustIssue(pki.IssueRequest{
		Type:        "WebDesignerQuality",
		Holder:      "AerospaceCo",
		HolderKey:   f.aerospaceKeys.Public,
		Sensitivity: xtnl.SensitivityMedium,
		Attributes:  []xtnl.Attribute{{Name: "regulation", Value: "UNI EN ISO 9000"}},
	})
	f.aaaCred = f.aaaCA.MustIssue(pki.IssueRequest{
		Type:        "AAAccreditation",
		Holder:      "AircraftCo",
		HolderKey:   f.aircraftKeys.Public,
		Sensitivity: xtnl.SensitivityLow,
	})

	aeroProfile := xtnl.NewProfile("AerospaceCo")
	aeroProfile.Add(f.wdqCred)
	f.aerospace = &Party{
		Name:    "AerospaceCo",
		Profile: aeroProfile,
		Policies: xtnl.MustPolicySet(xtnl.MustParsePolicies(
			"WebDesignerQuality <- AAAccreditation | BalanceSheet(issuer='BBB')",
		)...),
		Trust: pki.NewTrustStore(f.qualityCA, f.aaaCA, f.bbbCA),
		Keys:  f.aerospaceKeys,
	}

	airProfile := xtnl.NewProfile("AircraftCo")
	airProfile.Add(f.aaaCred)
	f.aircraft = &Party{
		Name:    "AircraftCo",
		Profile: airProfile,
		Policies: xtnl.MustPolicySet(xtnl.MustParsePolicies(
			"VoMembership <- WebDesignerQuality(regulation='UNI EN ISO 9000')",
		)...),
		Trust: pki.NewTrustStore(f.qualityCA, f.aaaCA, f.bbbCA),
		Keys:  f.aircraftKeys,
		Grant: func(resource, peer string) ([]byte, error) {
			return []byte("membership:" + peer), nil
		},
	}
	return f
}

func TestStandardNegotiationSuccess(t *testing.T) {
	f := newFixture(t)
	reqOut, ctlOut, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if !reqOut.Succeeded || !ctlOut.Succeeded {
		t.Fatalf("outcomes: req=%+v ctl=%+v", reqOut, ctlOut)
	}
	if string(reqOut.Grant) != "membership:AerospaceCo" {
		t.Fatalf("grant = %q", reqOut.Grant)
	}
	// The controller received the quality credential, the requester the
	// accreditation, per the Fig. 2 trust sequence.
	if len(ctlOut.Received) != 1 || ctlOut.Received[0].Credential.Type != "WebDesignerQuality" {
		t.Fatalf("controller received: %+v", ctlOut.Received)
	}
	if len(reqOut.Received) != 1 || reqOut.Received[0].Credential.Type != "AAAccreditation" {
		t.Fatalf("requester received: %+v", reqOut.Received)
	}
	if reqOut.Rounds == 0 || ctlOut.Rounds == 0 {
		t.Fatal("rounds not counted")
	}
}

func TestDelivResource(t *testing.T) {
	f := newFixture(t)
	f.aircraft.Policies = xtnl.MustPolicySet(xtnl.MustParsePolicies("PublicCatalog <- DELIV")...)
	reqOut, ctlOut, err := Run(f.aerospace, f.aircraft, "PublicCatalog")
	if err != nil {
		t.Fatal(err)
	}
	if !reqOut.Succeeded || !ctlOut.Succeeded {
		t.Fatalf("DELIV should grant immediately: %+v", reqOut)
	}
	if len(ctlOut.Received) != 0 {
		t.Fatalf("no credentials should flow for DELIV: %+v", ctlOut.Received)
	}
}

func TestResourceNotOffered(t *testing.T) {
	f := newFixture(t)
	reqOut, _, err := Run(f.aerospace, f.aircraft, "SomethingElse")
	if err != nil {
		t.Fatal(err)
	}
	if reqOut.Succeeded {
		t.Fatal("unoffered resource granted")
	}
	if !strings.Contains(reqOut.Reason, "not offered") {
		t.Fatalf("reason = %q", reqOut.Reason)
	}
}

func TestRequesterLacksCredential(t *testing.T) {
	f := newFixture(t)
	f.aerospace.Profile = xtnl.NewProfile("AerospaceCo") // empty
	reqOut, ctlOut, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if reqOut.Succeeded || ctlOut.Succeeded {
		t.Fatal("negotiation should fail without the quality credential")
	}
	if !strings.Contains(ctlOut.Reason, "no satisfiable view") && !strings.Contains(reqOut.Reason, "no satisfiable view") {
		t.Fatalf("reasons: req=%q ctl=%q", reqOut.Reason, ctlOut.Reason)
	}
}

func TestAlternativeFallback(t *testing.T) {
	// The aircraft company lacks the AAA accreditation but holds a
	// balance sheet from BBB: the second alternative edge of Fig. 2.
	f := newFixture(t)
	balance := f.bbbCA.MustIssue(pki.IssueRequest{
		Type: "BalanceSheet", Holder: "AircraftCo",
		Attributes: []xtnl.Attribute{{Name: "year", Value: "2009"}},
	})
	prof := xtnl.NewProfile("AircraftCo")
	prof.Add(balance)
	f.aircraft.Profile = prof
	reqOut, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if !reqOut.Succeeded {
		t.Fatalf("alternative branch should succeed: %s", reqOut.Reason)
	}
	if len(reqOut.Received) != 1 || reqOut.Received[0].Credential.Type != "BalanceSheet" {
		t.Fatalf("requester received: %+v", reqOut.Received)
	}
}

func TestConditionNarrowsAlternative(t *testing.T) {
	// A balance sheet from the wrong issuer fails the issuer='BBB'
	// condition, so neither alternative works.
	f := newFixture(t)
	wrongIssuer := f.qualityCA.MustIssue(pki.IssueRequest{Type: "BalanceSheet", Holder: "AircraftCo"})
	prof := xtnl.NewProfile("AircraftCo")
	prof.Add(wrongIssuer)
	f.aircraft.Profile = prof
	reqOut, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if reqOut.Succeeded {
		t.Fatal("wrong-issuer balance sheet should not satisfy the condition")
	}
}

func TestRevokedCredentialFailsNegotiation(t *testing.T) {
	// §4.2: "if a party uses a revoked certificate, the negotiation fails".
	f := newFixture(t)
	f.qualityCA.Revoke(f.wdqCred.ID)
	if err := f.aircraft.Trust.AddCRL(f.qualityCA.CRL()); err != nil {
		t.Fatal(err)
	}
	reqOut, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if reqOut.Succeeded {
		t.Fatal("revoked credential accepted")
	}
	if !strings.Contains(reqOut.Reason, "revoked") {
		t.Fatalf("reason = %q", reqOut.Reason)
	}
}

func TestExpiredCredentialFailsNegotiation(t *testing.T) {
	f := newFixture(t)
	expired := f.qualityCA.MustIssue(pki.IssueRequest{
		Type:       "WebDesignerQuality",
		Holder:     "AerospaceCo",
		ValidFrom:  time.Now().Add(-48 * time.Hour),
		Lifetime:   time.Hour,
		Attributes: []xtnl.Attribute{{Name: "regulation", Value: "UNI EN ISO 9000"}},
	})
	prof := xtnl.NewProfile("AerospaceCo")
	prof.Add(expired)
	f.aerospace.Profile = prof
	reqOut, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if reqOut.Succeeded {
		t.Fatal("expired credential accepted")
	}
	if !strings.Contains(reqOut.Reason, "validity") {
		t.Fatalf("reason = %q", reqOut.Reason)
	}
}

func TestTrustingStrategyFewerRounds(t *testing.T) {
	std := newFixture(t)
	stdReq, _, err := Run(std.aerospace, std.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}

	tru := newFixture(t)
	tru.aerospace.Strategy = Trusting
	tru.aircraft.Strategy = Trusting
	truReq, _, err := Run(tru.aerospace, tru.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if !truReq.Succeeded {
		t.Fatalf("trusting negotiation failed: %s", truReq.Reason)
	}
	if truReq.Rounds >= stdReq.Rounds {
		t.Fatalf("trusting should use fewer rounds: trusting=%d standard=%d", truReq.Rounds, stdReq.Rounds)
	}
}

func TestDeeperPolicyChain(t *testing.T) {
	// Aircraft protects its AAAccreditation behind a further requirement
	// (the aerospace company's privacy-regulator certification),
	// exercising a three-level chain.
	f := newFixture(t)
	privacy := f.qualityCA.MustIssue(pki.IssueRequest{
		Type: "PrivacyRegulator", Holder: "AerospaceCo", Sensitivity: xtnl.SensitivityLow,
	})
	f.aerospace.Profile.Add(privacy)
	f.aircraft.Policies = xtnl.MustPolicySet(xtnl.MustParsePolicies(`
VoMembership <- WebDesignerQuality(regulation='UNI EN ISO 9000')
AAAccreditation <- PrivacyRegulator
`)...)
	reqOut, ctlOut, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if !reqOut.Succeeded {
		t.Fatalf("chain negotiation failed: %s", reqOut.Reason)
	}
	// The controller received both the privacy cert and the quality cert.
	types := map[string]bool{}
	for _, d := range ctlOut.Received {
		types[d.Credential.Type] = true
	}
	if !types["PrivacyRegulator"] || !types["WebDesignerQuality"] {
		t.Fatalf("controller received %v", types)
	}
}

func TestMutualRequirementResolved(t *testing.T) {
	// X <- Y and Y <- X with both credentials held: the interlocking
	// requirements resolve by mutual commitment — the engine complies on
	// the repeated requirement instead of looping or failing (the §5.1
	// "PrivacyRegulator ← PrivacyRegulator" pattern).
	f := newFixture(t)
	f.aerospace.Policies = xtnl.MustPolicySet(xtnl.MustParsePolicies(
		"WebDesignerQuality <- AAAccreditation",
	)...)
	f.aircraft.Policies = xtnl.MustPolicySet(xtnl.MustParsePolicies(`
VoMembership <- WebDesignerQuality(regulation='UNI EN ISO 9000')
AAAccreditation <- WebDesignerQuality(regulation='UNI EN ISO 9000')
`)...)
	reqOut, ctlOut, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if !reqOut.Succeeded {
		t.Fatalf("mutual requirement should resolve: %s", reqOut.Reason)
	}
	// each side disclosed its credential exactly once
	if len(reqOut.Sent) != 1 || len(ctlOut.Sent) != 1 {
		t.Fatalf("disclosures: req sent %d, ctl sent %d", len(reqOut.Sent), len(ctlOut.Sent))
	}
}

func TestMutualRequirementFailsWhenCredentialMissing(t *testing.T) {
	// The same interlock fails when one side cannot actually produce the
	// credential: commitment semantics never invent disclosures.
	f := newFixture(t)
	f.aerospace.Policies = xtnl.MustPolicySet(xtnl.MustParsePolicies(
		"WebDesignerQuality <- AAAccreditation",
	)...)
	f.aircraft.Profile = xtnl.NewProfile("AircraftCo") // AAA credential gone
	f.aircraft.Policies = xtnl.MustPolicySet(xtnl.MustParsePolicies(`
VoMembership <- WebDesignerQuality(regulation='UNI EN ISO 9000')
AAAccreditation <- WebDesignerQuality(regulation='UNI EN ISO 9000')
`)...)
	reqOut, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if reqOut.Succeeded {
		t.Fatal("interlock without the credential should fail")
	}
}

// TestPrivacyRegulatorMutualExample reproduces the paper's §5.1
// operational-phase example verbatim: "the policies to be satisfied are:
// Certification() ← PrivacyRegulator() and PrivacyRegulator() ←
// PrivacyRegulator() in response to the Aircraft Company one" — both
// parties prove privacy compliance to each other.
func TestPrivacyRegulatorMutualExample(t *testing.T) {
	f := newFixture(t)
	prA := f.qualityCA.MustIssue(pki.IssueRequest{Type: "PrivacyRegulator", Holder: "AerospaceCo"})
	prB := f.qualityCA.MustIssue(pki.IssueRequest{Type: "PrivacyRegulator", Holder: "AircraftCo"})
	f.aerospace.Profile.Add(prA)
	f.aircraft.Profile.Add(prB)
	// The aerospace company (controller of the certification) protects
	// it behind the privacy requirement; each party protects its own
	// PrivacyRegulator behind the counterpart's.
	f.aerospace.Policies = xtnl.MustPolicySet(xtnl.MustParsePolicies(`
Certification <- PrivacyRegulator
PrivacyRegulator <- PrivacyRegulator
`)...)
	f.aircraft.Policies = xtnl.MustPolicySet(xtnl.MustParsePolicies(
		"PrivacyRegulator <- PrivacyRegulator")...)
	f.aerospace.Grant = func(resource, peer string) ([]byte, error) {
		return []byte("certification-still-valid"), nil
	}
	out, ctlOut, err := Run(f.aircraft, f.aerospace, "Certification")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Succeeded {
		t.Fatalf("§5.1 mutual privacy example failed: %s", out.Reason)
	}
	// both privacy certificates were exchanged
	if len(out.Received) != 1 || out.Received[0].Credential.Type != "PrivacyRegulator" {
		t.Fatalf("requester received: %+v", out.Received)
	}
	if len(ctlOut.Received) != 1 || ctlOut.Received[0].Credential.Type != "PrivacyRegulator" {
		t.Fatalf("controller received: %+v", ctlOut.Received)
	}
}

func TestRoundLimit(t *testing.T) {
	f := newFixture(t)
	f.aircraft.MaxRounds = 2
	reqOut, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if reqOut.Succeeded {
		t.Fatal("round-limited negotiation should fail")
	}
	if !strings.Contains(reqOut.Reason, "round limit") {
		t.Fatalf("reason = %q", reqOut.Reason)
	}
}

func TestDelegationChainDisclosure(t *testing.T) {
	// The quality credential's issuer is unknown to the aircraft company
	// but a delegation credential from a common root bridges the gap
	// (§4.2: retrieving credentials "through credentials chains").
	f := newFixture(t)
	root := pki.MustNewAuthority("RootCA")
	delegation, err := root.Delegate(f.qualityCA, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	f.aircraft.Trust = pki.NewTrustStore(root, f.aaaCA, f.bbbCA) // QualityCA NOT a direct root
	f.aerospace.Chains = []*xtnl.Credential{delegation}
	reqOut, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if !reqOut.Succeeded {
		t.Fatalf("chained-issuer negotiation failed: %s", reqOut.Reason)
	}
}

func suspiciousFixture(t testing.TB) *fixture {
	f := newFixture(t)
	// The aerospace company's quality credential must support selective
	// disclosure for the suspicious strategy (§6.3).
	sc, err := f.qualityCA.IssueSelective(pki.IssueRequest{
		Type:        "WebDesignerQuality",
		Holder:      "AerospaceCo",
		HolderKey:   f.aerospaceKeys.Public,
		Sensitivity: xtnl.SensitivityMedium,
		Attributes: []xtnl.Attribute{
			{Name: "regulation", Value: "UNI EN ISO 9000"},
			{Name: "auditReport", Value: "CONFIDENTIAL-2009"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	prof := xtnl.NewProfile("AerospaceCo")
	f.aerospace.Profile = prof // plain credential removed
	f.aerospace.Selective = map[string]*pki.SelectiveCredential{sc.Committed.ID: sc}
	f.aerospace.Strategy = Suspicious
	return f
}

func TestSuspiciousSelectiveDisclosure(t *testing.T) {
	f := suspiciousFixture(t)
	reqOut, ctlOut, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if !reqOut.Succeeded {
		t.Fatalf("suspicious negotiation failed: %s", reqOut.Reason)
	}
	// The controller saw only the attribute its condition references;
	// the confidential audit report stayed hidden.
	if len(ctlOut.Received) != 1 {
		t.Fatalf("controller received %d credentials", len(ctlOut.Received))
	}
	view := ctlOut.Received[0].Credential
	if v, ok := view.Attr("regulation"); !ok || v != "UNI EN ISO 9000" {
		t.Fatalf("regulation not opened: %+v", view.Attributes)
	}
	if _, ok := view.Attr("auditReport"); ok {
		t.Fatal("confidential attribute leaked under suspicious strategy")
	}
}

func TestSuspiciousWithoutSelectiveFails(t *testing.T) {
	// §6.3: plain (X.509-style) credentials cannot partially hide their
	// content, so suspicious strategies are unusable with them.
	f := newFixture(t)
	f.aerospace.Strategy = Suspicious
	reqOut, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if reqOut.Succeeded {
		t.Fatal("suspicious strategy with plain credentials should fail")
	}
	if !strings.Contains(reqOut.Reason, "selective disclosure") {
		t.Fatalf("reason = %q", reqOut.Reason)
	}
}

func TestSuspiciousOwnershipProofEnforced(t *testing.T) {
	// The controller's accreditation lacks a holder key, so it cannot
	// prove ownership to the suspicious requester.
	f := suspiciousFixture(t)
	noKey := f.aaaCA.MustIssue(pki.IssueRequest{Type: "AAAccreditation", Holder: "AircraftCo"})
	prof := xtnl.NewProfile("AircraftCo")
	prof.Add(noKey)
	f.aircraft.Profile = prof
	reqOut, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if reqOut.Succeeded {
		t.Fatal("credential without ownership proof accepted by suspicious party")
	}
	if !strings.Contains(reqOut.Reason, "ownership") {
		t.Fatalf("reason = %q", reqOut.Reason)
	}
}

func TestStrongSuspiciousPacing(t *testing.T) {
	std := suspiciousFixture(t)
	stdReq, _, err := Run(std.aerospace, std.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if !stdReq.Succeeded {
		t.Fatalf("baseline suspicious run failed: %s", stdReq.Reason)
	}

	ss := suspiciousFixture(t)
	ss.aerospace.Strategy = StrongSuspicious
	ssReq, _, err := Run(ss.aerospace, ss.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if !ssReq.Succeeded {
		t.Fatalf("strong-suspicious run failed: %s", ssReq.Reason)
	}
	if ssReq.Rounds < stdReq.Rounds {
		t.Fatalf("strong suspicious should not use fewer rounds: %d vs %d", ssReq.Rounds, stdReq.Rounds)
	}
}

func TestConceptLevelNegotiation(t *testing.T) {
	// §4.3: the aircraft company abstracts its policy to the
	// quality-certification concept; the aerospace company's local
	// naming differs (it holds an "ISO 9000 Certified" credential) but
	// Algorithm 1 maps the concept onto it.
	f := newFixture(t)

	refOntology := func() *ontology.Ontology {
		o := ontology.New()
		o.MustAdd(&ontology.Concept{
			Name:       "quality-certification",
			Attributes: []string{"regulation"},
			Implementations: []ontology.Implementation{
				{CredType: "WebDesignerQuality"},
				{CredType: "ISO 9000 Certified"},
			},
		})
		return o
	}

	iso := f.qualityCA.MustIssue(pki.IssueRequest{
		Type:        "ISO 9000 Certified",
		Holder:      "AerospaceCo",
		Sensitivity: xtnl.SensitivityLow,
		Attributes:  []xtnl.Attribute{{Name: "regulation", Value: "UNI EN ISO 9000"}},
	})
	aeroProf := xtnl.NewProfile("AerospaceCo")
	aeroProf.Add(iso)
	f.aerospace.Profile = aeroProf
	f.aerospace.Policies = xtnl.MustPolicySet() // ISO credential unprotected
	f.aerospace.Mapper = &ontology.Mapper{Ontology: refOntology(), Profile: aeroProf}

	f.aircraft.Mapper = &ontology.Mapper{Ontology: refOntology(), Profile: f.aircraft.Profile}
	f.aircraft.AbstractLevels = 1

	reqOut, ctlOut, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if !reqOut.Succeeded {
		t.Fatalf("concept-level negotiation failed: %s", reqOut.Reason)
	}
	if len(ctlOut.Received) != 1 || ctlOut.Received[0].Credential.Type != "ISO 9000 Certified" {
		t.Fatalf("controller received %+v", ctlOut.Received)
	}
}

func TestConceptNegotiationWithoutOntologyFails(t *testing.T) {
	f := newFixture(t)
	o := ontology.New()
	o.MustAdd(&ontology.Concept{
		Name:            "quality-certification",
		Attributes:      []string{"regulation"},
		Implementations: []ontology.Implementation{{CredType: "WebDesignerQuality"}},
	})
	f.aircraft.Mapper = &ontology.Mapper{Ontology: o, Profile: f.aircraft.Profile}
	f.aircraft.AbstractLevels = 1
	// aerospace has no mapper: it cannot interpret concept-level terms
	reqOut, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if reqOut.Succeeded {
		t.Fatal("concept term resolved without an ontology")
	}
}

func TestOutcomeSentRecorded(t *testing.T) {
	f := newFixture(t)
	reqOut, ctlOut, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if len(reqOut.Sent) != 1 || reqOut.Sent[0].Credential.Type != "WebDesignerQuality" {
		t.Fatalf("requester sent: %+v", reqOut.Sent)
	}
	if len(ctlOut.Sent) != 1 || ctlOut.Sent[0].Credential.Type != "AAAccreditation" {
		t.Fatalf("controller sent: %+v", ctlOut.Sent)
	}
}

func TestEndpointMisuse(t *testing.T) {
	f := newFixture(t)
	ct := NewController(f.aircraft)
	if _, err := ct.Start(); err == nil {
		t.Fatal("controller Start should error")
	}
	rq := NewRequester(f.aerospace, "R")
	if _, err := rq.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := rq.Start(); err == nil {
		t.Fatal("double Start should error")
	}
	// handling a message after done errors
	reply, err := ct.Handle(&Message{Type: MsgFail, From: "x", Reason: "stop"})
	if err != nil || reply != nil {
		t.Fatalf("terminal handle: %v %v", reply, err)
	}
	if _, err := ct.Handle(&Message{Type: MsgAck}); err == nil {
		t.Fatal("handle after done should error")
	}
}

func TestMessagesSurviveWireRoundTrip(t *testing.T) {
	// Drive the full standard negotiation with every message re-encoded
	// through the XML wire format, as the web service transport does.
	f := newFixture(t)
	rq := NewRequester(f.aerospace, "VoMembership")
	ct := NewController(f.aircraft)
	msg, err := rq.Start()
	if err != nil {
		t.Fatal(err)
	}
	to := ct
	for msg != nil {
		decoded, err := ParseMessage(msg.XML())
		if err != nil {
			t.Fatalf("wire round trip of %s: %v", msg.Summary(), err)
		}
		reply, err := to.Handle(decoded)
		if err != nil {
			t.Fatal(err)
		}
		if to == ct {
			to = rq
		} else {
			to = ct
		}
		msg = reply
	}
	if !rq.Done() || !ct.Done() {
		t.Fatal("negotiation did not finish")
	}
	if !rq.Outcome().Succeeded {
		t.Fatalf("wire negotiation failed: %s", rq.Outcome().Reason)
	}
}

// ---- benchmarks (EXT-1/2/3) ----

// chainFixture builds a negotiation whose policy chain has the given
// depth: each level's credential is protected by the next requirement,
// alternating between the parties.
func chainFixture(b *testing.B, depth int) (*Party, *Party) {
	ca := pki.MustNewAuthority("CA")
	reqProf := xtnl.NewProfile("REQ")
	ctlProf := xtnl.NewProfile("CTL")
	var reqRules, ctlRules []string
	ctlRules = append(ctlRules, "Resource <- Cred0")
	for i := 0; i < depth; i++ {
		holder, prof := "REQ", reqProf
		rules := &reqRules
		if i%2 == 1 {
			holder, prof, rules = "CTL", ctlProf, &ctlRules
		}
		name := credName(i)
		prof.Add(ca.MustIssue(pki.IssueRequest{Type: name, Holder: holder}))
		if i+1 < depth {
			*rules = append(*rules, name+" <- "+credName(i+1))
		}
	}
	trust := func() *pki.TrustStore { return pki.NewTrustStore(ca) }
	req := &Party{Name: "REQ", Profile: reqProf,
		Policies: xtnl.MustPolicySet(xtnl.MustParsePolicies(joinLines(reqRules))...), Trust: trust()}
	ctl := &Party{Name: "CTL", Profile: ctlProf,
		Policies: xtnl.MustPolicySet(xtnl.MustParsePolicies(joinLines(ctlRules))...), Trust: trust()}
	return req, ctl
}

func credName(i int) string { return "Cred" + string(rune('0'+i)) }

func joinLines(ss []string) string { return strings.Join(ss, "\n") }

func benchmarkDepth(b *testing.B, depth int) {
	req, ctl := chainFixture(b, depth)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := Run(req, ctl, "Resource")
		if err != nil || !out.Succeeded {
			b.Fatalf("negotiation failed: %v %+v", err, out)
		}
	}
}

func BenchmarkNegotiationDepth2(b *testing.B) { benchmarkDepth(b, 2) }
func BenchmarkNegotiationDepth4(b *testing.B) { benchmarkDepth(b, 4) }
func BenchmarkNegotiationDepth8(b *testing.B) { benchmarkDepth(b, 8) }

func branchFixture(b *testing.B, branches int) (*Party, *Party) {
	ca := pki.MustNewAuthority("CA")
	reqProf := xtnl.NewProfile("REQ")
	ctlProf := xtnl.NewProfile("CTL")
	// Controller offers Resource behind ReqCred; requester protects
	// ReqCred behind N alternatives, only the last of which the
	// controller can satisfy.
	reqProf.Add(ca.MustIssue(pki.IssueRequest{Type: "ReqCred", Holder: "REQ"}))
	var alts []string
	for i := 0; i < branches; i++ {
		alts = append(alts, "Alt"+string(rune('0'+i)))
	}
	ctlProf.Add(ca.MustIssue(pki.IssueRequest{Type: alts[branches-1], Holder: "CTL"}))
	rule := "ReqCred <- " + strings.Join(alts, " | ")
	req := &Party{Name: "REQ", Profile: reqProf,
		Policies: xtnl.MustPolicySet(xtnl.MustParsePolicies(rule)...), Trust: pki.NewTrustStore(ca)}
	ctl := &Party{Name: "CTL", Profile: ctlProf,
		Policies: xtnl.MustPolicySet(xtnl.MustParsePolicies("Resource <- ReqCred")...), Trust: pki.NewTrustStore(ca)}
	return req, ctl
}

func benchmarkBranch(b *testing.B, branches int) {
	req, ctl := branchFixture(b, branches)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := Run(req, ctl, "Resource")
		if err != nil || !out.Succeeded {
			b.Fatalf("negotiation failed: %v %+v", err, out)
		}
	}
}

func BenchmarkNegotiationBranch1(b *testing.B) { benchmarkBranch(b, 1) }
func BenchmarkNegotiationBranch4(b *testing.B) { benchmarkBranch(b, 4) }
func BenchmarkNegotiationBranch8(b *testing.B) { benchmarkBranch(b, 8) }

func benchmarkStrategy(b *testing.B, s Strategy) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f := newFixture(b)
		f.aerospace.Strategy = s
		f.aircraft.Strategy = s
		if s.RequiresSelectiveDisclosure() {
			b.Skip("suspicious strategies benchmarked separately with selective credentials")
		}
		b.StartTimer()
		out, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
		if err != nil || !out.Succeeded {
			b.Fatalf("negotiation failed: %v %+v", err, out)
		}
	}
}

func BenchmarkStrategyTrusting(b *testing.B) { benchmarkStrategy(b, Trusting) }
func BenchmarkStrategyStandard(b *testing.B) { benchmarkStrategy(b, Standard) }

// TestX509FormatNegotiation exercises the §6.3 dual-format support: the
// aircraft company discloses its accreditation as an X.509 attribute
// certificate instead of X-TNL XML; the counterpart verifies it against
// the same trust roots and the negotiation still succeeds.
func TestX509FormatNegotiation(t *testing.T) {
	f := newFixture(t)
	der, err := f.aaaCA.EncodeX509Attribute(f.aaaCred)
	if err != nil {
		t.Fatal(err)
	}
	f.aircraft.X509 = map[string][]byte{f.aaaCred.ID: der}
	f.aircraft.PreferX509 = true

	reqOut, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if !reqOut.Succeeded {
		t.Fatalf("x509 negotiation failed: %s", reqOut.Reason)
	}
	if len(reqOut.Received) != 1 || reqOut.Received[0].Credential.Type != "AAAccreditation" {
		t.Fatalf("requester received: %+v", reqOut.Received)
	}
	// the decoded view carries the issuer from the certificate chain
	if reqOut.Received[0].Credential.Issuer != "AAA" {
		t.Fatalf("issuer = %q", reqOut.Received[0].Credential.Issuer)
	}
}

// TestX509FormatRejectsSuspicious confirms §6.3's restriction holds for
// the X.509 encoding too: a suspicious party refuses to disclose a
// format that cannot partially hide its content.
func TestX509FormatRejectsSuspicious(t *testing.T) {
	f := newFixture(t)
	der, err := f.qualityCA.EncodeX509Attribute(f.wdqCred)
	if err != nil {
		t.Fatal(err)
	}
	f.aerospace.X509 = map[string][]byte{f.wdqCred.ID: der}
	f.aerospace.PreferX509 = true
	f.aerospace.Strategy = Suspicious

	reqOut, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if reqOut.Succeeded {
		t.Fatal("suspicious strategy disclosed a monolithic x509 credential")
	}
	if !strings.Contains(reqOut.Reason, "selective disclosure") {
		t.Fatalf("reason = %q", reqOut.Reason)
	}
}

// TestX509FormatRevoked: a revoked X.509-encoded credential fails the
// negotiation exactly like its XML twin.
func TestX509FormatRevoked(t *testing.T) {
	f := newFixture(t)
	der, err := f.aaaCA.EncodeX509Attribute(f.aaaCred)
	if err != nil {
		t.Fatal(err)
	}
	f.aircraft.X509 = map[string][]byte{f.aaaCred.ID: der}
	f.aircraft.PreferX509 = true
	f.aaaCA.Revoke(f.aaaCred.ID)
	if err := f.aerospace.Trust.AddCRL(f.aaaCA.CRL()); err != nil {
		t.Fatal(err)
	}
	reqOut, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if reqOut.Succeeded {
		t.Fatal("revoked x509 credential accepted")
	}
	if !strings.Contains(reqOut.Reason, "revoked") {
		t.Fatalf("reason = %q", reqOut.Reason)
	}
}

// TestX509SurvivesWireRoundTrip: the DER payload travels intact through
// the XML envelope.
func TestX509SurvivesWireRoundTrip(t *testing.T) {
	f := newFixture(t)
	der, err := f.aaaCA.EncodeX509Attribute(f.aaaCred)
	if err != nil {
		t.Fatal(err)
	}
	f.aircraft.X509 = map[string][]byte{f.aaaCred.ID: der}
	f.aircraft.PreferX509 = true

	rq := NewRequester(f.aerospace, "VoMembership")
	ct := NewController(f.aircraft)
	msg, err := rq.Start()
	if err != nil {
		t.Fatal(err)
	}
	to := ct
	for msg != nil {
		decoded, err := ParseMessage(msg.XML())
		if err != nil {
			t.Fatal(err)
		}
		reply, err := to.Handle(decoded)
		if err != nil {
			t.Fatal(err)
		}
		if to == ct {
			to = rq
		} else {
			to = ct
		}
		msg = reply
	}
	if !rq.Outcome().Succeeded {
		t.Fatalf("wire x509 negotiation failed: %s", rq.Outcome().Reason)
	}
}

// TestWildcardMultiTypeFallback: a wildcard term matches two credential
// types; the less sensitive one is protected by an unsatisfiable chain,
// but the other type's policies can be met. The engine must expose both
// types' policies as alternatives and disclose the credential backing
// the branch that actually succeeded.
func TestWildcardMultiTypeFallback(t *testing.T) {
	f := newFixture(t)
	// Aircraft requires ANY credential with country='IT' from aerospace.
	f.aircraft.Policies = xtnl.MustPolicySet(xtnl.MustParsePolicies(
		"VoMembership <- $any(country='IT')")...)

	easy := f.qualityCA.MustIssue(pki.IssueRequest{
		Type: "ChamberOfCommerce", Holder: "AerospaceCo", Sensitivity: xtnl.SensitivityLow,
		Attributes: []xtnl.Attribute{{Name: "country", Value: "IT"}},
	})
	hard := f.qualityCA.MustIssue(pki.IssueRequest{
		Type: "TaxRegistration", Holder: "AerospaceCo", Sensitivity: xtnl.SensitivityHigh,
		Attributes: []xtnl.Attribute{{Name: "country", Value: "IT"}},
	})
	prof := xtnl.NewProfile("AerospaceCo")
	prof.Add(easy, hard)
	f.aerospace.Profile = prof
	// The low-sensitivity candidate is locked behind an impossible
	// requirement; the high-sensitivity one behind a satisfiable one.
	f.aerospace.Policies = xtnl.MustPolicySet(xtnl.MustParsePolicies(`
ChamberOfCommerce <- ImpossibleCredential
TaxRegistration <- AAAccreditation
`)...)

	reqOut, ctlOut, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if !reqOut.Succeeded {
		t.Fatalf("multi-type fallback failed: %s", reqOut.Reason)
	}
	// the credential disclosed is the one whose branch was satisfied
	if len(ctlOut.Received) != 1 || ctlOut.Received[0].Credential.Type != "TaxRegistration" {
		t.Fatalf("controller received: %+v", ctlOut.Received)
	}
}

func TestEndpointAccessors(t *testing.T) {
	f := newFixture(t)
	rq := NewRequester(f.aerospace, "VoMembership")
	if rq.Party() != f.aerospace {
		t.Fatal("Party accessor broken")
	}
	if rq.Tree() != nil {
		t.Fatal("tree should be nil before Start")
	}
	if _, err := rq.Start(); err != nil {
		t.Fatal(err)
	}
	if rq.Tree() == nil || rq.Tree().Len() != 1 {
		t.Fatalf("tree after Start: %v", rq.Tree())
	}
	if Requester.String() != "requester" || Controller.String() != "controller" {
		t.Fatal("role labels changed")
	}
}

func TestMustSucceedHelper(t *testing.T) {
	f := newFixture(t)
	out, err := MustSucceed(f.aerospace, f.aircraft, "VoMembership")
	if err != nil || !out.Succeeded {
		t.Fatalf("MustSucceed: %v %+v", err, out)
	}
	if _, err := MustSucceed(f.aerospace, f.aircraft, "NotOffered"); err == nil {
		t.Fatal("MustSucceed should surface failure")
	}
}

// TestSuspiciousDelegatedConceptSelective exercises the selective-
// credential concept path: a suspicious party resolves a concept-level
// term against a selective credential via its ontology.
func TestSuspiciousConceptSelective(t *testing.T) {
	f := newFixture(t)
	o := ontology.New()
	o.MustAdd(&ontology.Concept{
		Name:       "quality-certification",
		Attributes: []string{"regulation"},
		Implementations: []ontology.Implementation{
			{CredType: "WebDesignerQuality", Attribute: "regulation"},
		},
	})
	sc, err := f.qualityCA.IssueSelective(pki.IssueRequest{
		Type: "WebDesignerQuality", Holder: "AerospaceCo", HolderKey: f.aerospaceKeys.Public,
		Attributes: []xtnl.Attribute{{Name: "regulation", Value: "UNI EN ISO 9000"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.aerospace.Profile = xtnl.NewProfile("AerospaceCo")
	f.aerospace.Selective = map[string]*pki.SelectiveCredential{sc.Committed.ID: sc}
	f.aerospace.Strategy = Suspicious
	f.aerospace.Mapper = &ontology.Mapper{Ontology: o, Profile: f.aerospace.Profile}

	f.aircraft.Mapper = &ontology.Mapper{Ontology: o, Profile: f.aircraft.Profile}
	f.aircraft.AbstractLevels = 1

	out, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Succeeded {
		t.Fatalf("suspicious concept-selective negotiation failed: %s", out.Reason)
	}
}

// TestProofDemandWithoutKeys: a party facing a proof-demanding
// counterpart but holding no keys fails cleanly.
func TestProofDemandWithoutKeys(t *testing.T) {
	f := suspiciousFixture(t)
	f.aircraft.Keys = nil // controller cannot prove ownership
	out, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if out.Succeeded {
		t.Fatal("succeeded without required proofs")
	}
	if !strings.Contains(out.Reason, "no keys") && !strings.Contains(out.Reason, "ownership") {
		t.Fatalf("reason = %q", out.Reason)
	}
}

func TestPartyClockOverride(t *testing.T) {
	// A party whose clock is far in the future sees every credential as
	// expired.
	f := newFixture(t)
	f.aircraft.Clock = func() time.Time { return time.Now().Add(10 * 365 * 24 * time.Hour) }
	out, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if out.Succeeded {
		t.Fatal("future clock accepted stale credentials")
	}
}
