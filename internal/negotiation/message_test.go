package negotiation

import (
	"bytes"
	"reflect"
	"testing"

	"trustvo/internal/xtnl"
)

func TestMessageRoundTripRequest(t *testing.T) {
	m := &Message{
		Type:         MsgRequest,
		From:         "AerospaceCo",
		Resource:     "VoMembership",
		Strategy:     Suspicious,
		RequireProof: true,
		Nonce:        []byte{1, 2, 3},
	}
	re, err := ParseMessage(m.XML())
	if err != nil {
		t.Fatal(err)
	}
	if re.Type != MsgRequest || re.From != m.From || re.Resource != m.Resource {
		t.Fatalf("fields lost: %+v", re)
	}
	if re.Strategy != Suspicious || !re.RequireProof {
		t.Fatalf("strategy lost: %+v", re)
	}
	if !bytes.Equal(re.Nonce, m.Nonce) {
		t.Fatalf("nonce lost: %v", re.Nonce)
	}
}

func TestMessageRoundTripPolicyAnswers(t *testing.T) {
	m := &Message{
		Type: MsgPolicy,
		From: "AircraftCo",
		Answers: []Answer{
			{NodeID: "r", Kind: AnswerPolicies, Policies: []*xtnl.Policy{
				{Resource: "VoMembership", Terms: []xtnl.Term{
					{CredType: "WebDesignerQuality", Conditions: []string{"/credential/content/regulation='UNI EN ISO 9000'"}},
				}},
				{Resource: "VoMembership", Terms: []xtnl.Term{{CredType: "BalanceSheet"}}},
			}},
			{NodeID: "r.0.0", Kind: AnswerDeny, Reason: "credential not possessed"},
			{NodeID: "r.1.0", Kind: AnswerComply},
		},
	}
	re, err := ParseMessage(m.XML())
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Answers) != 3 {
		t.Fatalf("answers = %d", len(re.Answers))
	}
	a0 := re.Answers[0]
	if a0.Kind != AnswerPolicies || len(a0.Policies) != 2 {
		t.Fatalf("answer 0: %+v", a0)
	}
	if got := a0.Policies[0].Terms[0].Conditions[0]; got != "/credential/content/regulation='UNI EN ISO 9000'" {
		t.Fatalf("condition lost: %q", got)
	}
	if re.Answers[1].Kind != AnswerDeny || re.Answers[1].Reason != "credential not possessed" {
		t.Fatalf("answer 1: %+v", re.Answers[1])
	}
	if re.Answers[2].Kind != AnswerComply {
		t.Fatalf("answer 2: %+v", re.Answers[2])
	}
}

func TestMessageRoundTripCredential(t *testing.T) {
	cred := &xtnl.Credential{
		ID: "c1", Type: "ISO 9000 Certified", Issuer: "INFN",
		Attributes: []xtnl.Attribute{{Name: "QualityRegulation", Value: "UNI EN ISO 9000"}},
		Signature:  []byte{9, 8, 7},
	}
	chain := &xtnl.Credential{ID: "d1", Type: "AuthorityDelegation", Issuer: "Root",
		Attributes: []xtnl.Attribute{{Name: "authorityName", Value: "INFN"}}}
	m := &Message{
		Type: MsgCredential,
		From: "AerospaceCo",
		Disclosures: []CredentialDisclosure{{
			NodeID:         "r.0.0",
			Credential:     cred,
			OwnershipProof: []byte{4, 5},
			Chain:          []*xtnl.Credential{chain},
		}},
		Nonce: []byte{6},
	}
	re, err := ParseMessage(m.XML())
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Disclosures) != 1 {
		t.Fatalf("disclosures = %d", len(re.Disclosures))
	}
	d := re.Disclosures[0]
	if d.NodeID != "r.0.0" || d.Credential == nil || d.Credential.ID != "c1" {
		t.Fatalf("disclosure lost: %+v", d)
	}
	if !bytes.Equal(d.OwnershipProof, []byte{4, 5}) {
		t.Fatalf("proof lost: %v", d.OwnershipProof)
	}
	if len(d.Chain) != 1 || d.Chain[0].ID != "d1" {
		t.Fatalf("chain lost: %+v", d.Chain)
	}
}

func TestMessageRoundTripSelectiveDisclosure(t *testing.T) {
	committed := &xtnl.Credential{
		ID: "c2", Type: "BalanceSheet (hashed)", Issuer: "INFN",
		Attributes: []xtnl.Attribute{{Name: "year", Value: "aGFzaA=="}},
		Signature:  []byte{1},
	}
	m := &Message{
		Type: MsgCredential,
		Disclosures: []CredentialDisclosure{{
			NodeID:    "r.0.0",
			Committed: committed,
			Opened:    []OpenedAttr{{Name: "year", Value: "2009", Salt: []byte{1, 2}}},
		}},
	}
	re, err := ParseMessage(m.XML())
	if err != nil {
		t.Fatal(err)
	}
	d := re.Disclosures[0]
	if d.Committed == nil || d.Committed.ID != "c2" {
		t.Fatalf("committed lost: %+v", d)
	}
	if len(d.Opened) != 1 || d.Opened[0].Value != "2009" || !bytes.Equal(d.Opened[0].Salt, []byte{1, 2}) {
		t.Fatalf("opened lost: %+v", d.Opened)
	}
}

func TestMessageRoundTripSequenceSuccessFail(t *testing.T) {
	seq := &Message{Type: MsgSequence, From: "a", Sequence: []string{"r.0.0", "r.0.1"}}
	re, err := ParseMessage(seq.XML())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(re.Sequence, seq.Sequence) {
		t.Fatalf("sequence lost: %v", re.Sequence)
	}

	suc := &Message{Type: MsgSuccess, From: "b", Grant: []byte("membership-der")}
	re, err = ParseMessage(suc.XML())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.Grant, suc.Grant) {
		t.Fatalf("grant lost: %v", re.Grant)
	}

	fail := &Message{Type: MsgFail, From: "b", Reason: "revoked certificate"}
	re, err = ParseMessage(fail.XML())
	if err != nil {
		t.Fatal(err)
	}
	if re.Reason != "revoked certificate" {
		t.Fatalf("reason lost: %q", re.Reason)
	}
}

func TestParseMessageErrors(t *testing.T) {
	cases := []string{
		`not xml`,
		`<wrong/>`,
		`<tnMessage type="bogus"/>`,
		`<tnMessage type="policy"><answer node="r" kind="bogus"/></tnMessage>`,
		`<tnMessage type="policy"><answer node="r" kind="policies"><policy/></answer></tnMessage>`,
		`<tnMessage type="credential"><disclosure node="x"><committed/></disclosure></tnMessage>`,
		`<tnMessage type="request" strategy="bogus"/>`,
		`<tnMessage type="ack"><nonce>!!</nonce></tnMessage>`,
	}
	for _, c := range cases {
		if _, err := ParseMessage(c); err == nil {
			t.Errorf("ParseMessage(%q): expected error", c)
		}
	}
}

func TestStrategyParsing(t *testing.T) {
	for _, s := range []Strategy{Trusting, Standard, Suspicious, StrongSuspicious} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v: %v, %v", s, got, err)
		}
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Error("unknown strategy accepted")
	}
	if got, err := ParseStrategy(""); err != nil || got != Standard {
		t.Errorf("empty strategy: %v, %v", got, err)
	}
}

func TestMessageSummary(t *testing.T) {
	for _, m := range []*Message{
		{Type: MsgRequest, Resource: "R"},
		{Type: MsgPolicy, Answers: []Answer{{}}},
		{Type: MsgCredential},
		{Type: MsgSequence, Sequence: []string{"a"}},
		{Type: MsgFail, Reason: "x"},
		{Type: MsgAck},
	} {
		if m.Summary() == "" {
			t.Errorf("empty summary for %v", m.Type)
		}
	}
}
