package negotiation

import (
	"errors"
	"fmt"
)

// Run drives a complete in-process negotiation between requester and
// controller for the named resource, returning both outcomes. It is the
// programmatic equivalent of the paper's standalone TN execution (the
// "trust negotiation" bar of Fig. 9); the web-service deployment in
// internal/wsrpc transports the same messages over HTTP.
func Run(requester, controller *Party, resource string) (reqOut, ctlOut *Outcome, err error) {
	rq := NewRequester(requester, resource)
	ct := NewController(controller)
	msg, err := rq.Start()
	if err != nil {
		return nil, nil, err
	}
	if err := Drive(rq, ct, msg); err != nil {
		return nil, nil, err
	}
	return rq.Outcome(), ct.Outcome(), nil
}

// Drive pumps messages between two endpoints until both finish. first is
// the opening message from a (already produced by a.Start or a prior
// Handle); it is delivered to b.
func Drive(a, b *Endpoint, first *Message) error {
	cur := first
	from, to := a, b
	for cur != nil {
		reply, err := to.Handle(cur)
		if err != nil {
			return fmt.Errorf("negotiation: %s: %w", to.party.Name, err)
		}
		from, to = to, from
		cur = reply
	}
	if !a.Done() || !b.Done() {
		return errors.New("negotiation: message flow ended before both endpoints finished")
	}
	return nil
}

// MustSucceed is Run that fails with an error unless the negotiation
// succeeded; convenient for examples.
func MustSucceed(requester, controller *Party, resource string) (*Outcome, error) {
	out, _, err := Run(requester, controller, resource)
	if err != nil {
		return nil, err
	}
	if !out.Succeeded {
		return nil, fmt.Errorf("negotiation for %q failed: %s", resource, out.Reason)
	}
	return out, nil
}
