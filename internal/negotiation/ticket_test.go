package negotiation

import (
	"testing"
	"time"

	"trustvo/internal/pki"
)

func TestTicketVerify(t *testing.T) {
	keys := pki.MustGenerateKeyPair()
	tk := IssueTicket(keys, "AircraftCo", "AerospaceCo", "Certification", time.Hour)
	now := time.Now()
	if err := tk.Verify(keys.Public, "AerospaceCo", "Certification", now); err != nil {
		t.Fatal(err)
	}
	// wrong peer
	if err := tk.Verify(keys.Public, "Mallory", "Certification", now); err == nil {
		t.Fatal("wrong peer accepted")
	}
	// wrong resource
	if err := tk.Verify(keys.Public, "AerospaceCo", "Other", now); err == nil {
		t.Fatal("wrong resource accepted")
	}
	// expired
	if err := tk.Verify(keys.Public, "AerospaceCo", "Certification", now.Add(2*time.Hour)); err == nil {
		t.Fatal("expired ticket accepted")
	}
	// wrong key
	other := pki.MustGenerateKeyPair()
	if err := tk.Verify(other.Public, "AerospaceCo", "Certification", now); err == nil {
		t.Fatal("foreign key accepted")
	}
	// tampered fields
	forged := *tk
	forged.Resource = "Everything"
	if err := forged.Verify(keys.Public, "AerospaceCo", "Everything", now); err == nil {
		t.Fatal("tampered ticket accepted")
	}
}

func TestTicketCache(t *testing.T) {
	c := NewTicketCache()
	keys := pki.MustGenerateKeyPair()
	now := time.Now()
	c.Put(IssueTicket(keys, "a", "me", "R1", time.Hour))
	c.Put(IssueTicket(keys, "b", "me", "R2", -time.Hour)) // already expired
	if got := c.Get("a", "R1", now); got == nil {
		t.Fatal("cached ticket missing")
	}
	if got := c.Get("b", "R2", now); got != nil {
		t.Fatal("expired ticket served")
	}
	if got := c.GetByResource("R1", now); got == nil || got.Issuer != "a" {
		t.Fatalf("GetByResource = %+v", got)
	}
	if got := c.GetByResource("R2", now); got != nil {
		t.Fatal("expired ticket served by resource")
	}
	if c.Len() != 1 { // expired entries were dropped on access
		t.Fatalf("Len = %d", c.Len())
	}
	// nil-safety
	var nilCache *TicketCache
	nilCache.Put(nil)
	if nilCache.Get("a", "R1", now) != nil || nilCache.GetByResource("R1", now) != nil || nilCache.Len() != 0 {
		t.Fatal("nil cache misbehaved")
	}
}

// TestTicketSkipsRenegotiation: the first negotiation runs the full
// protocol and yields a ticket; the second presents it and completes in
// two messages.
func TestTicketSkipsRenegotiation(t *testing.T) {
	f := newFixture(t)
	f.aircraft.TicketTTL = time.Hour
	f.aerospace.Tickets = NewTicketCache()

	first, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if !first.Succeeded {
		t.Fatalf("first negotiation failed: %s", first.Reason)
	}
	if f.aerospace.Tickets.Len() != 1 {
		t.Fatalf("ticket not cached: %d", f.aerospace.Tickets.Len())
	}

	second, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if !second.Succeeded {
		t.Fatalf("ticketed negotiation failed: %s", second.Reason)
	}
	if second.Rounds >= first.Rounds {
		t.Fatalf("ticket did not shorten the negotiation: %d vs %d rounds", second.Rounds, first.Rounds)
	}
	if len(second.Sent) != 0 || len(second.Received) != 0 {
		t.Fatal("ticketed negotiation should disclose nothing")
	}
}

// TestForgedTicketIgnored: a ticket signed by someone else falls back to
// the full negotiation instead of failing (graceful degradation) — and
// the negotiation still succeeds on the merits.
func TestForgedTicketIgnored(t *testing.T) {
	f := newFixture(t)
	mallory := pki.MustGenerateKeyPair()
	f.aerospace.Tickets = NewTicketCache()
	f.aerospace.Tickets.Put(IssueTicket(mallory, "AircraftCo", "AerospaceCo", "VoMembership", time.Hour))

	out, ctlOut, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Succeeded {
		t.Fatalf("fallback negotiation failed: %s", out.Reason)
	}
	// the full protocol ran: credentials were exchanged
	if len(ctlOut.Received) == 0 {
		t.Fatal("expected a full negotiation after the forged ticket")
	}
}

// TestTicketBoundToPeer: a stolen ticket presented by another party is
// rejected (the binding includes the peer name) and the thief must run
// the full negotiation.
func TestTicketBoundToPeer(t *testing.T) {
	f := newFixture(t)
	f.aircraft.Keys = f.aircraftKeys
	// the ticket was issued to AerospaceCo...
	stolen := IssueTicket(f.aircraftKeys, "AircraftCo", "AerospaceCo", "VoMembership", time.Hour)
	// ...but a different party presents it
	thiefProfile := f.aerospace.Profile
	thief := &Party{
		Name:     "ThiefCo",
		Profile:  thiefProfile,
		Policies: f.aerospace.Policies,
		Trust:    f.aerospace.Trust,
		Tickets:  NewTicketCache(),
	}
	thief.Tickets.Put(stolen)
	out, _, err := Run(thief, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	// the thief still succeeds — but only because it (ab)uses the same
	// profile and runs the FULL negotiation; the point is the ticket
	// short-circuit did not trigger for the wrong peer.
	if !out.Succeeded {
		t.Fatalf("negotiation failed: %s", out.Reason)
	}
	if len(out.Sent) == 0 {
		t.Fatal("stolen ticket skipped the negotiation")
	}
}

func TestTicketWireRoundTrip(t *testing.T) {
	keys := pki.MustGenerateKeyPair()
	tk := IssueTicket(keys, "a", "b", "R", time.Hour)
	m := &Message{Type: MsgSuccess, From: "a", Ticket: tk, Grant: []byte("g")}
	re, err := ParseMessage(m.XML())
	if err != nil {
		t.Fatal(err)
	}
	if re.Ticket == nil || re.Ticket.Issuer != "a" || re.Ticket.Peer != "b" || re.Ticket.Resource != "R" {
		t.Fatalf("ticket lost: %+v", re.Ticket)
	}
	if err := re.Ticket.Verify(keys.Public, "b", "R", time.Now()); err != nil {
		t.Fatalf("ticket signature lost in transit: %v", err)
	}
	// malformed wire tickets rejected
	if _, err := ParseMessage(`<tnMessage type="success"><ticket expires="nope">c2ln</ticket></tnMessage>`); err == nil {
		t.Fatal("bad ticket expiry accepted")
	}
	if _, err := ParseMessage(`<tnMessage type="success"><ticket expires="2026-01-01T00:00:00Z">!!</ticket></tnMessage>`); err == nil {
		t.Fatal("bad ticket signature encoding accepted")
	}
}

// BenchmarkNegotiationWithTicket quantifies the trust-ticket speedup
// (EXT-9).
func BenchmarkNegotiationWithTicket(b *testing.B) {
	f := newFixture(b)
	f.aircraft.TicketTTL = time.Hour
	f.aerospace.Tickets = NewTicketCache()
	if out, _, err := Run(f.aerospace, f.aircraft, "VoMembership"); err != nil || !out.Succeeded {
		b.Fatalf("priming negotiation failed: %v %+v", err, out)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
		if err != nil || !out.Succeeded {
			b.Fatalf("ticketed negotiation failed: %v %+v", err, out)
		}
	}
}
