package negotiation

import (
	"encoding/base64"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"trustvo/internal/xmldom"
	"trustvo/internal/xtnl"
)

// Endpoint suspend/resume.
//
// Trust-X resumes interrupted negotiations: a suspended negotiation is
// captured as the last acknowledged tree state plus the exchange
// position, so a rejoining party continues where it stopped instead of
// restarting both phases. SnapshotDOM serializes everything Handle needs
// — the mirror tree, the chosen candidates (by credential ID; the
// credentials themselves stay in the party's profile), the disclosure
// positions and nonces, and the partial outcome — and RestoreEndpoint
// rebuilds a live endpoint from it. Both sides use it: clients embed the
// snapshot in a ResumeTicket, servers persist it across restarts.

// ErrSnapshotDone reports an attempt to snapshot a finished endpoint.
var ErrSnapshotDone = fmt.Errorf("negotiation: endpoint already done, nothing to resume")

// SnapshotDOM serializes the endpoint's in-flight negotiation state.
func (e *Endpoint) SnapshotDOM() (*xmldom.Node, error) {
	if e.phase == phaseDone {
		return nil, ErrSnapshotDone
	}
	if e.tree == nil {
		return nil, fmt.Errorf("negotiation: nothing to snapshot before the first message")
	}
	root := xmldom.NewElement("negotiationState").
		SetAttr("role", e.role.String()).
		SetAttr("resource", e.resource).
		SetAttr("peer", e.peer).
		SetAttr("phase", phaseName(e.phase)).
		SetAttr("rounds", strconv.Itoa(e.rounds)).
		SetAttr("seqPos", strconv.Itoa(e.seqPos))
	if e.peerProof {
		root.SetAttr("peerProof", "true")
	}
	if len(e.lastNonceRecv) > 0 {
		root.SetAttr("nonceRecv", base64.StdEncoding.EncodeToString(e.lastNonceRecv))
	}
	if len(e.lastNonceSent) > 0 {
		root.SetAttr("nonceSent", base64.StdEncoding.EncodeToString(e.lastNonceSent))
	}
	root.AppendChild(treeDOM(e.tree))
	if len(e.disclosed) > 0 {
		ids := make([]string, 0, len(e.disclosed))
		for id, ok := range e.disclosed {
			if ok {
				ids = append(ids, id)
			}
		}
		sort.Strings(ids)
		d := xmldom.NewElement("disclosed")
		d.AppendChild(xmldom.NewText(strings.Join(ids, " ")))
		root.AppendChild(d)
	}
	for _, id := range sortedKeys(e.chosen) {
		root.AppendChild(xmldom.NewElement("chosen").
			SetAttr("node", id).
			SetAttr("credential", e.chosen[id].cred.ID))
	}
	for _, id := range sortedKeys(e.chosenAlts) {
		ca := xmldom.NewElement("chosenAlts").SetAttr("node", id)
		for _, c := range e.chosenAlts[id] {
			cand := xmldom.NewElement("cand")
			if c.cred != nil {
				cand.SetAttr("credential", c.cred.ID)
			}
			ca.AppendChild(cand)
		}
		root.AppendChild(ca)
	}
	if e.outcome != nil && (len(e.outcome.Received) > 0 || len(e.outcome.Sent) > 0) {
		out := xmldom.NewElement("partialOutcome")
		for _, d := range e.outcome.Received {
			out.AppendChild(disclosedDOM("received", d))
		}
		for _, d := range e.outcome.Sent {
			out.AppendChild(disclosedDOM("sent", d))
		}
		root.AppendChild(out)
	}
	return root, nil
}

// RestoreEndpoint rebuilds a live endpoint for p from a snapshot.
// Credentials are re-resolved from p's current profile by ID: restoring
// fails only when a credential still owed to the peer is no longer held.
func RestoreEndpoint(p *Party, root *xmldom.Node) (*Endpoint, error) {
	if root == nil || root.Name != "negotiationState" {
		return nil, fmt.Errorf("negotiation: expected <negotiationState>, got %v", nodeName(root))
	}
	e := &Endpoint{
		party:      p,
		resource:   root.AttrOr("resource", ""),
		peer:       root.AttrOr("peer", ""),
		chosen:     make(map[string]candidate),
		chosenAlts: make(map[string][]candidate),
		disclosed:  make(map[string]bool),
	}
	if root.AttrOr("role", "") == Controller.String() {
		e.role = Controller
	}
	var err error
	if e.phase, err = parsePhase(root.AttrOr("phase", "")); err != nil {
		return nil, err
	}
	e.rounds, _ = strconv.Atoi(root.AttrOr("rounds", "0"))
	e.seqPos, _ = strconv.Atoi(root.AttrOr("seqPos", "0"))
	e.peerProof = root.AttrOr("peerProof", "") == "true"
	if v := root.AttrOr("nonceRecv", ""); v != "" {
		if e.lastNonceRecv, err = base64.StdEncoding.DecodeString(v); err != nil {
			return nil, fmt.Errorf("negotiation: bad nonceRecv: %w", err)
		}
	}
	if v := root.AttrOr("nonceSent", ""); v != "" {
		if e.lastNonceSent, err = base64.StdEncoding.DecodeString(v); err != nil {
			return nil, fmt.Errorf("negotiation: bad nonceSent: %w", err)
		}
	}
	if e.tree, err = treeFromDOM(root.Child("tree")); err != nil {
		return nil, err
	}
	if d := root.Child("disclosed"); d != nil {
		for _, id := range strings.Fields(d.Text()) {
			e.disclosed[id] = true
		}
	}
	// The trust sequence is a pure function of the completed tree, so it
	// is recomputed, not stored (phase 2 implies a complete tree).
	if e.phase == phaseExchange {
		e.seq = e.tree.Sequence()
		if e.seq == nil {
			return nil, fmt.Errorf("negotiation: restored exchange-phase tree is not satisfiable")
		}
		if e.seqPos > len(e.seq) {
			return nil, fmt.Errorf("negotiation: restored seqPos %d beyond sequence length %d", e.seqPos, len(e.seq))
		}
	}
	for _, ch := range root.Childs("chosen") {
		nodeID, credID := ch.AttrOr("node", ""), ch.AttrOr("credential", "")
		c, ok, err := e.findCandidate(nodeID, credID)
		if err != nil {
			return nil, err
		}
		if ok {
			e.chosen[nodeID] = c
		}
	}
	for _, ca := range root.Childs("chosenAlts") {
		nodeID := ca.AttrOr("node", "")
		var alts []candidate
		for _, cn := range ca.Childs("cand") {
			c, ok, err := e.findCandidate(nodeID, cn.AttrOr("credential", ""))
			if err != nil {
				return nil, err
			}
			_ = ok // a missing optional candidate stays a zero placeholder
			alts = append(alts, c)
		}
		e.chosenAlts[nodeID] = alts
	}
	if err := e.checkOwedCandidates(); err != nil {
		return nil, err
	}
	if po := root.Child("partialOutcome"); po != nil {
		out := e.ensureOutcome()
		for _, el := range po.Elements() {
			d, err := disclosedFromDOM(el)
			if err != nil {
				return nil, err
			}
			switch el.Name {
			case "received":
				out.Received = append(out.Received, d)
			case "sent":
				out.Sent = append(out.Sent, d)
			}
		}
	}
	return e, nil
}

// findCandidate re-resolves a chosen credential from the party's current
// profile by node term and credential ID.
func (e *Endpoint) findCandidate(nodeID, credID string) (candidate, bool, error) {
	n := e.tree.Node(nodeID)
	if n == nil {
		return candidate{}, false, fmt.Errorf("negotiation: snapshot references unknown node %s", nodeID)
	}
	cands, err := e.party.resolveTerm(n.Term)
	if err != nil {
		return candidate{}, false, nil // no candidates at all; checkOwedCandidates decides
	}
	for _, c := range cands {
		if c.cred.ID == credID {
			return c, true, nil
		}
	}
	return candidate{}, false, nil
}

// checkOwedCandidates verifies that every sequence entry this endpoint
// still owes the peer has a disclosable candidate; entries already
// disclosed (or belonging to the peer) need nothing.
func (e *Endpoint) checkOwedCandidates() error {
	for i := e.seqPos; i < len(e.seq); i++ {
		s := e.seq[i]
		if s.Owner != e.party.Name || e.disclosed[s.NodeID] {
			continue
		}
		if _, ok := e.chosen[s.NodeID]; ok {
			continue
		}
		if ai := e.tree.ChosenAlt(s.NodeID); ai >= 0 {
			if alts := e.chosenAlts[s.NodeID]; ai < len(alts) && alts[ai].cred != nil {
				continue
			}
		}
		return fmt.Errorf("negotiation: cannot resume — credential for node %s no longer held", s.NodeID)
	}
	return nil
}

// ---- tree (de)serialization ----

func treeDOM(t *Tree) *xmldom.Node {
	root := xmldom.NewElement("tree")
	ids := make([]string, 0, len(t.nodes))
	for id := range t.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := t.nodes[id]
		nd := xmldom.NewElement("node").
			SetAttr("id", n.ID).
			SetAttr("credType", n.Term.CredType).
			SetAttr("owner", n.Owner).
			SetAttr("state", n.State.String())
		if n.Parent != "" {
			nd.SetAttr("parent", n.Parent)
		}
		for _, c := range n.Term.Conditions {
			cond := xmldom.NewElement("cond")
			cond.AppendChild(xmldom.NewText(c))
			nd.AppendChild(cond)
		}
		for _, alt := range n.Alts {
			a := xmldom.NewElement("alt")
			a.AppendChild(xmldom.NewText(strings.Join(alt, " ")))
			nd.AppendChild(a)
		}
		root.AppendChild(nd)
	}
	return root
}

func treeFromDOM(root *xmldom.Node) (*Tree, error) {
	if root == nil {
		return nil, fmt.Errorf("negotiation: snapshot without <tree>")
	}
	t := &Tree{nodes: make(map[string]*Node)}
	for _, nd := range root.Childs("node") {
		id := nd.AttrOr("id", "")
		if id == "" {
			return nil, fmt.Errorf("negotiation: tree node without id")
		}
		state, err := parseNodeState(nd.AttrOr("state", ""))
		if err != nil {
			return nil, err
		}
		n := &Node{
			ID:     id,
			Term:   xtnl.Term{CredType: nd.AttrOr("credType", "")},
			Owner:  nd.AttrOr("owner", ""),
			State:  state,
			Parent: nd.AttrOr("parent", ""),
		}
		for _, c := range nd.Childs("cond") {
			n.Term.Conditions = append(n.Term.Conditions, c.Text())
		}
		for _, a := range nd.Childs("alt") {
			n.Alts = append(n.Alts, strings.Fields(a.Text()))
		}
		t.nodes[id] = n
	}
	if t.nodes[RootID] == nil {
		return nil, fmt.Errorf("negotiation: snapshot tree without root node")
	}
	for _, n := range t.nodes {
		if n.Parent != "" && t.nodes[n.Parent] == nil {
			return nil, fmt.Errorf("negotiation: node %s references unknown parent %s", n.ID, n.Parent)
		}
		for _, alt := range n.Alts {
			for _, cid := range alt {
				if t.nodes[cid] == nil {
					return nil, fmt.Errorf("negotiation: node %s references unknown child %s", n.ID, cid)
				}
			}
		}
	}
	return t, nil
}

// ---- small helpers ----

func phaseName(p phase) string {
	if p == phaseExchange {
		return "exchange"
	}
	return "eval"
}

func parsePhase(s string) (phase, error) {
	switch s {
	case "eval":
		return phaseEval, nil
	case "exchange":
		return phaseExchange, nil
	default:
		return 0, fmt.Errorf("negotiation: snapshot phase %q not resumable", s)
	}
}

func parseNodeState(s string) (NodeState, error) {
	for _, st := range []NodeState{StateOpen, StateComply, StateExpanded, StateDenied} {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("negotiation: unknown node state %q", s)
}

func disclosedDOM(name string, d Disclosed) *xmldom.Node {
	n := xmldom.NewElement(name).
		SetAttr("by", d.By).
		SetAttr("node", d.NodeID)
	if d.Credential != nil {
		n.AppendChild(d.Credential.DOM())
	}
	return n
}

func disclosedFromDOM(n *xmldom.Node) (Disclosed, error) {
	d := Disclosed{By: n.AttrOr("by", ""), NodeID: n.AttrOr("node", "")}
	if c := n.Child("credential"); c != nil {
		cred, err := xtnl.CredentialFromDOM(c)
		if err != nil {
			return Disclosed{}, fmt.Errorf("negotiation: snapshot credential: %w", err)
		}
		d.Credential = cred
	}
	return d, nil
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func nodeName(n *xmldom.Node) string {
	if n == nil {
		return "nil"
	}
	return "<" + n.Name + ">"
}
