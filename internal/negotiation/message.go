package negotiation

import (
	"encoding/base64"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"trustvo/internal/xmldom"
	"trustvo/internal/xtnl"
)

// MsgType enumerates the negotiation protocol messages.
type MsgType int

const (
	// MsgRequest opens a negotiation for a resource (requester → controller).
	MsgRequest MsgType = iota
	// MsgPolicy carries policy-evaluation answers for open tree nodes.
	MsgPolicy
	// MsgContinue keeps the alternation alive when the sender has no new
	// answers yet (used by the strong-suspicious one-answer pacing).
	MsgContinue
	// MsgSequence proposes the agreed trust sequence, ending phase 1.
	MsgSequence
	// MsgCredential discloses the sender's next run of credentials in
	// the trust sequence.
	MsgCredential
	// MsgAck acknowledges verified disclosures without disclosing
	// (carries the challenge nonce for the counterpart's next turn).
	MsgAck
	// MsgSuccess ends the negotiation with the resource grant.
	MsgSuccess
	// MsgFail aborts the negotiation.
	MsgFail
)

var msgTypeNames = map[MsgType]string{
	MsgRequest: "request", MsgPolicy: "policy", MsgContinue: "continue",
	MsgSequence: "sequence", MsgCredential: "credential", MsgAck: "ack",
	MsgSuccess: "success", MsgFail: "fail",
}

func (m MsgType) String() string {
	if s, ok := msgTypeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", int(m))
}

func parseMsgType(s string) (MsgType, error) {
	for k, v := range msgTypeNames {
		if v == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("negotiation: unknown message type %q", s)
}

// AnswerKind discriminates policy-evaluation answers.
type AnswerKind int

const (
	// AnswerPolicies: the node is protected; the attached policies must
	// be satisfied first.
	AnswerPolicies AnswerKind = iota
	// AnswerComply: the node will be satisfied freely (and, under the
	// trusting strategy, the disclosure may be attached immediately).
	AnswerComply
	// AnswerDeny: the sender does not possess a satisfying credential or
	// refuses (also used to cut policy cycles).
	AnswerDeny
)

func (k AnswerKind) String() string {
	switch k {
	case AnswerPolicies:
		return "policies"
	case AnswerComply:
		return "comply"
	case AnswerDeny:
		return "deny"
	default:
		return fmt.Sprintf("AnswerKind(%d)", int(k))
	}
}

// Answer is one policy-evaluation verdict for a tree node owned by the
// sender.
type Answer struct {
	NodeID   string
	Kind     AnswerKind
	Policies []*xtnl.Policy // AnswerPolicies: the protecting alternatives
	Reason   string         // AnswerDeny: human-readable cause
	// Disclosure carries the eager credential of a trusting COMPLY.
	Disclosure *CredentialDisclosure
}

// CredentialDisclosure is one disclosed credential: either a full
// credential or a selective disclosure (committed credential + opened
// attributes), plus an optional ownership proof over the receiver's
// nonce and any delegation credentials supporting the issuer chain.
type CredentialDisclosure struct {
	NodeID string
	// Credential is the full credential (nil when selective or X.509).
	Credential *xtnl.Credential
	// X509 carries the credential as an X.509 v2-style attribute
	// certificate (DER) instead of X-TNL XML — the §6.3 dual-format
	// support.
	X509 []byte
	// Committed and Opened carry a selective disclosure.
	Committed *xtnl.Credential
	Opened    []OpenedAttr
	// OwnershipProof is the holder-key signature over the receiver's
	// last nonce.
	OwnershipProof []byte
	// Chain holds AuthorityDelegation credentials linking the issuer to
	// one of the receiver's trust roots.
	Chain []*xtnl.Credential
}

// OpenedAttr mirrors pki.OpenedAttr on the wire.
type OpenedAttr struct {
	Name  string
	Value string
	Salt  []byte
}

// Message is one protocol message. Messages serialize to XML for the TN
// web service transport (internal/wsrpc).
type Message struct {
	Type     MsgType
	From     string
	Resource string   // MsgRequest
	Strategy Strategy // MsgRequest: requester's strategy (informational)
	// RequireProof tells the counterpart that this sender demands
	// ownership proofs on the credentials it receives.
	RequireProof bool
	Answers      []Answer // MsgPolicy
	// Sequence carries the proposed trust sequence node IDs (MsgSequence).
	Sequence []string
	// Disclosures carries phase-2 credentials (MsgCredential) .
	Disclosures []CredentialDisclosure
	// Nonce is the fresh challenge for the counterpart's next disclosure.
	Nonce []byte
	// Grant is the opaque resource payload of MsgSuccess.
	Grant []byte
	// Ticket is a trust ticket: presented with MsgRequest to skip the
	// negotiation, or freshly issued with MsgSuccess.
	Ticket *Ticket
	// Reason explains MsgFail.
	Reason string
}

// ---- XML codec ----

// DOM serializes the message. The layout is the reproduction's TN wire
// format: <tnMessage type=… from=…> with one child per populated field.
func (m *Message) DOM() *xmldom.Node {
	root := xmldom.NewElement("tnMessage").
		SetAttr("type", m.Type.String()).
		SetAttr("from", m.From)
	if m.Resource != "" {
		root.SetAttr("resource", m.Resource)
	}
	if m.Type == MsgRequest {
		root.SetAttr("strategy", m.Strategy.String())
	}
	if m.RequireProof {
		root.SetAttr("requireProof", "true")
	}
	for _, a := range m.Answers {
		an := xmldom.NewElement("answer").
			SetAttr("node", a.NodeID).
			SetAttr("kind", a.Kind.String())
		if a.Reason != "" {
			an.SetAttr("reason", a.Reason)
		}
		for _, p := range a.Policies {
			an.AppendChild(p.DOM())
		}
		if a.Disclosure != nil {
			an.AppendChild(a.Disclosure.dom())
		}
		root.AppendChild(an)
	}
	if len(m.Sequence) > 0 {
		seq := xmldom.NewElement("trustSequence")
		for _, id := range m.Sequence {
			seq.AppendChild(xmldom.NewElement("entry").SetAttr("node", id))
		}
		root.AppendChild(seq)
	}
	for _, d := range m.Disclosures {
		root.AppendChild(d.dom())
	}
	if len(m.Nonce) > 0 {
		n := xmldom.NewElement("nonce")
		n.AppendChild(xmldom.NewText(base64.StdEncoding.EncodeToString(m.Nonce)))
		root.AppendChild(n)
	}
	if len(m.Grant) > 0 {
		g := xmldom.NewElement("grant")
		g.AppendChild(xmldom.NewText(base64.StdEncoding.EncodeToString(m.Grant)))
		root.AppendChild(g)
	}
	if m.Ticket != nil {
		root.AppendChild(m.Ticket.DOM())
	}
	if m.Reason != "" {
		r := xmldom.NewElement("reason")
		r.AppendChild(xmldom.NewText(m.Reason))
		root.AppendChild(r)
	}
	return root
}

func (d *CredentialDisclosure) dom() *xmldom.Node {
	el := xmldom.NewElement("disclosure").SetAttr("node", d.NodeID)
	if d.Credential != nil {
		el.AppendChild(d.Credential.DOM())
	}
	if len(d.X509) > 0 {
		xe := xmldom.NewElement("x509")
		xe.AppendChild(xmldom.NewText(base64.StdEncoding.EncodeToString(d.X509)))
		el.AppendChild(xe)
	}
	if d.Committed != nil {
		com := xmldom.NewElement("committed")
		com.AppendChild(d.Committed.DOM())
		el.AppendChild(com)
		for _, o := range d.Opened {
			oe := xmldom.NewElement("opened").
				SetAttr("name", o.Name).
				SetAttr("salt", base64.StdEncoding.EncodeToString(o.Salt))
			oe.AppendChild(xmldom.NewText(o.Value))
			el.AppendChild(oe)
		}
	}
	if len(d.OwnershipProof) > 0 {
		pr := xmldom.NewElement("ownershipProof")
		pr.AppendChild(xmldom.NewText(base64.StdEncoding.EncodeToString(d.OwnershipProof)))
		el.AppendChild(pr)
	}
	if len(d.Chain) > 0 {
		ch := xmldom.NewElement("chain")
		for _, c := range d.Chain {
			ch.AppendChild(c.DOM())
		}
		el.AppendChild(ch)
	}
	return el
}

// XML serializes the message in canonical form.
func (m *Message) XML() string { return m.DOM().XML() }

// ErrBadMessage reports a malformed wire message.
var ErrBadMessage = errors.New("negotiation: malformed message")

// ParseMessage decodes a wire message.
func ParseMessage(xmlText string) (*Message, error) {
	root, err := xmldom.ParseString(xmlText)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	return MessageFromDOM(root)
}

// MessageFromDOM decodes a message from a parsed tree.
func MessageFromDOM(root *xmldom.Node) (*Message, error) {
	if root.Name != "tnMessage" {
		return nil, fmt.Errorf("%w: root <%s>", ErrBadMessage, root.Name)
	}
	mt, err := parseMsgType(root.AttrOr("type", ""))
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	m := &Message{
		Type:         mt,
		From:         root.AttrOr("from", ""),
		Resource:     root.AttrOr("resource", ""),
		RequireProof: root.AttrOr("requireProof", "") == "true",
	}
	if st, ok := root.Attr("strategy"); ok {
		s, err := ParseStrategy(st)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadMessage, err)
		}
		m.Strategy = s
	}
	b64 := func(s string) ([]byte, error) {
		if s == "" {
			return nil, nil
		}
		return base64.StdEncoding.DecodeString(s)
	}
	for _, an := range root.Childs("answer") {
		a := Answer{NodeID: an.AttrOr("node", ""), Reason: an.AttrOr("reason", "")}
		switch an.AttrOr("kind", "") {
		case "policies":
			a.Kind = AnswerPolicies
		case "comply":
			a.Kind = AnswerComply
		case "deny":
			a.Kind = AnswerDeny
		default:
			return nil, fmt.Errorf("%w: answer kind %q", ErrBadMessage, an.AttrOr("kind", ""))
		}
		for _, pe := range an.Childs("policy") {
			p, err := xtnl.PolicyFromDOM(pe)
			if err != nil {
				return nil, fmt.Errorf("%w: %w", ErrBadMessage, err)
			}
			a.Policies = append(a.Policies, p)
		}
		if de := an.Child("disclosure"); de != nil {
			d, err := disclosureFromDOM(de)
			if err != nil {
				return nil, err
			}
			a.Disclosure = d
		}
		m.Answers = append(m.Answers, a)
	}
	if seq := root.Child("trustSequence"); seq != nil {
		for _, e := range seq.Childs("entry") {
			m.Sequence = append(m.Sequence, e.AttrOr("node", ""))
		}
	}
	for _, de := range root.Childs("disclosure") {
		d, err := disclosureFromDOM(de)
		if err != nil {
			return nil, err
		}
		m.Disclosures = append(m.Disclosures, *d)
	}
	if n := root.Child("nonce"); n != nil {
		if m.Nonce, err = b64(n.Text()); err != nil {
			return nil, fmt.Errorf("%w: nonce: %w", ErrBadMessage, err)
		}
	}
	if g := root.Child("grant"); g != nil {
		if m.Grant, err = b64(g.Text()); err != nil {
			return nil, fmt.Errorf("%w: grant: %w", ErrBadMessage, err)
		}
	}
	if tk := root.Child("ticket"); tk != nil {
		t, err := ticketFromDOM(tk)
		if err != nil {
			return nil, err
		}
		m.Ticket = t
	}
	if r := root.Child("reason"); r != nil {
		m.Reason = r.Text()
	}
	return m, nil
}

func disclosureFromDOM(el *xmldom.Node) (*CredentialDisclosure, error) {
	d := &CredentialDisclosure{NodeID: el.AttrOr("node", "")}
	if ce := el.Child("credential"); ce != nil {
		c, err := xtnl.CredentialFromDOM(ce)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadMessage, err)
		}
		d.Credential = c
	}
	if xe := el.Child("x509"); xe != nil {
		b, err := base64.StdEncoding.DecodeString(strings.TrimSpace(xe.Text()))
		if err != nil {
			return nil, fmt.Errorf("%w: x509: %w", ErrBadMessage, err)
		}
		d.X509 = b
	}
	if com := el.Child("committed"); com != nil {
		ce := com.Child("credential")
		if ce == nil {
			return nil, fmt.Errorf("%w: committed without credential", ErrBadMessage)
		}
		c, err := xtnl.CredentialFromDOM(ce)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadMessage, err)
		}
		d.Committed = c
	}
	for _, oe := range el.Childs("opened") {
		salt, err := base64.StdEncoding.DecodeString(oe.AttrOr("salt", ""))
		if err != nil {
			return nil, fmt.Errorf("%w: opened salt: %w", ErrBadMessage, err)
		}
		d.Opened = append(d.Opened, OpenedAttr{
			Name:  oe.AttrOr("name", ""),
			Value: oe.Text(),
			Salt:  salt,
		})
	}
	if pr := el.Child("ownershipProof"); pr != nil {
		b, err := base64.StdEncoding.DecodeString(pr.Text())
		if err != nil {
			return nil, fmt.Errorf("%w: ownership proof: %w", ErrBadMessage, err)
		}
		d.OwnershipProof = b
	}
	if ch := el.Child("chain"); ch != nil {
		for _, ce := range ch.Childs("credential") {
			c, err := xtnl.CredentialFromDOM(ce)
			if err != nil {
				return nil, fmt.Errorf("%w: chain: %w", ErrBadMessage, err)
			}
			d.Chain = append(d.Chain, c)
		}
	}
	return d, nil
}

// Summary is a short human-readable rendering for logs.
func (m *Message) Summary() string {
	switch m.Type {
	case MsgRequest:
		return fmt.Sprintf("request(%s, %s)", m.Resource, m.Strategy)
	case MsgPolicy:
		return fmt.Sprintf("policy(%d answers)", len(m.Answers))
	case MsgCredential:
		return fmt.Sprintf("credential(%d disclosures)", len(m.Disclosures))
	case MsgSequence:
		return fmt.Sprintf("sequence(%d entries)", len(m.Sequence))
	case MsgFail:
		return "fail(" + m.Reason + ")"
	default:
		return m.Type.String() + "(" + strconv.Itoa(len(m.Disclosures)) + ")"
	}
}
