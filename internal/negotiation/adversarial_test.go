package negotiation

import (
	"fmt"
	"strings"
	"testing"

	"trustvo/internal/pki"
	"trustvo/internal/xtnl"
)

// Adversarial protocol tests: a man-in-the-middle (or buggy peer)
// mutates messages in flight; the receiving endpoint must fail the
// negotiation rather than accept the mutation.

// driveWithMITM pumps messages between the endpoints, letting mutate
// rewrite each message before delivery. It returns the requester outcome.
func driveWithMITM(t *testing.T, f *fixture, mutate func(step int, m *Message) *Message) *Outcome {
	t.Helper()
	rq := NewRequester(f.aerospace, "VoMembership")
	ct := NewController(f.aircraft)
	msg, err := rq.Start()
	if err != nil {
		t.Fatal(err)
	}
	to := ct
	for step := 0; msg != nil && step < 64; step++ {
		msg = mutate(step, msg)
		reply, err := to.Handle(msg)
		if err != nil {
			t.Fatal(err)
		}
		if to == ct {
			to = rq
		} else {
			to = ct
		}
		msg = reply
	}
	if !rq.Done() {
		t.Fatal("requester did not finish")
	}
	return rq.Outcome()
}

func TestMITMTamperedSequenceRejected(t *testing.T) {
	f := newFixture(t)
	out := driveWithMITM(t, f, func(step int, m *Message) *Message {
		if m.Type == MsgSequence && len(m.Sequence) >= 2 {
			// swap the disclosure order
			m.Sequence[0], m.Sequence[1] = m.Sequence[1], m.Sequence[0]
		}
		return m
	})
	if out.Succeeded {
		t.Fatal("tampered trust sequence accepted")
	}
	if !strings.Contains(out.Reason, "sequence mismatch") {
		t.Fatalf("reason = %q", out.Reason)
	}
}

func TestMITMSwappedCredentialRejected(t *testing.T) {
	// Replace the disclosed quality credential with a different (validly
	// signed) credential that does not satisfy the term.
	f := newFixture(t)
	decoy := f.qualityCA.MustIssue(pki.IssueRequest{
		Type: "WebDesignerQuality", Holder: "AerospaceCo",
		Attributes: []xtnl.Attribute{{Name: "regulation", Value: "NONE"}},
	})
	out := driveWithMITM(t, f, func(step int, m *Message) *Message {
		for i := range m.Disclosures {
			if m.Disclosures[i].Credential != nil && m.Disclosures[i].Credential.Type == "WebDesignerQuality" {
				m.Disclosures[i].Credential = decoy
			}
		}
		return m
	})
	if out.Succeeded {
		t.Fatal("swapped credential accepted")
	}
}

func TestMITMForgedSignatureRejected(t *testing.T) {
	f := newFixture(t)
	out := driveWithMITM(t, f, func(step int, m *Message) *Message {
		for i := range m.Disclosures {
			if c := m.Disclosures[i].Credential; c != nil {
				forged := c.Clone()
				forged.SetAttr("regulation", "UNI EN ISO 9000") // keep satisfying...
				forged.Signature[0] ^= 0xFF                     // ...but break the signature
				m.Disclosures[i].Credential = forged
			}
		}
		return m
	})
	if out.Succeeded {
		t.Fatal("forged signature accepted")
	}
}

func TestMITMInjectedNodeRejected(t *testing.T) {
	// Injecting an answer for a node the peer does not own must abort.
	f := newFixture(t)
	out := driveWithMITM(t, f, func(step int, m *Message) *Message {
		if m.Type == MsgPolicy && step == 2 {
			m.Answers = append(m.Answers, Answer{NodeID: "r.9.9", Kind: AnswerComply})
		}
		return m
	})
	if out.Succeeded {
		t.Fatal("answer for unknown node accepted")
	}
}

func TestMITMDuplicateAnswerRejected(t *testing.T) {
	f := newFixture(t)
	out := driveWithMITM(t, f, func(step int, m *Message) *Message {
		if m.Type == MsgPolicy && len(m.Answers) > 0 {
			m.Answers = append(m.Answers, m.Answers[0])
		}
		return m
	})
	if out.Succeeded {
		t.Fatal("duplicate answer accepted")
	}
}

func TestMITMExtraDisclosureRejected(t *testing.T) {
	// A disclosure beyond the agreed trust sequence must be rejected.
	f := newFixture(t)
	extra := f.aaaCA.MustIssue(pki.IssueRequest{Type: "AAAccreditation", Holder: "AircraftCo"})
	out := driveWithMITM(t, f, func(step int, m *Message) *Message {
		if m.Type == MsgCredential {
			m.Disclosures = append(m.Disclosures, CredentialDisclosure{
				NodeID:     "r.0.0.0.0",
				Credential: extra,
			})
		}
		return m
	})
	if out.Succeeded {
		t.Fatal("extra disclosure accepted")
	}
}

func TestMITMEmptyDisclosureRejected(t *testing.T) {
	f := newFixture(t)
	out := driveWithMITM(t, f, func(step int, m *Message) *Message {
		for i := range m.Disclosures {
			m.Disclosures[i].Credential = nil
			m.Disclosures[i].Committed = nil
			m.Disclosures[i].X509 = nil
		}
		return m
	})
	if out.Succeeded {
		t.Fatal("empty disclosure accepted")
	}
}

func TestMITMPhaseConfusionRejected(t *testing.T) {
	// Turning an early policy message into a credential message must be
	// rejected as out-of-phase.
	f := newFixture(t)
	out := driveWithMITM(t, f, func(step int, m *Message) *Message {
		if step == 1 && m.Type == MsgPolicy {
			m.Type = MsgCredential
			m.Answers = nil
		}
		return m
	})
	if out.Succeeded {
		t.Fatal("phase confusion accepted")
	}
}

// TestPolicyBombBounded: interlocking policies that branch 4-ways at
// every level (distinct types per level, so the cycle guard never cuts)
// would grow the negotiation tree to ~4^6 nodes; the MaxTreeNodes bound
// fails the negotiation long before memory exhaustion.
func TestPolicyBombBounded(t *testing.T) {
	f := newFixture(t)
	f.aerospace.MaxTreeNodes = 64
	f.aircraft.MaxTreeNodes = 64

	ca := f.qualityCA
	aeroProf := xtnl.NewProfile("AerospaceCo")
	aeroProf.Add(f.wdqCred)
	airProf := xtnl.NewProfile("AircraftCo")
	var aeroRules, airRules []string
	aeroRules = append(aeroRules, "WebDesignerQuality <- Bomb0")
	const depth = 6
	for i := 0; i <= depth; i++ {
		name := fmt.Sprintf("Bomb%d", i)
		next := fmt.Sprintf("Bomb%d", i+1)
		holder, prof, rules := "AircraftCo", airProf, &airRules
		if i%2 == 1 {
			holder, prof, rules = "AerospaceCo", aeroProf, &aeroRules
		}
		prof.Add(ca.MustIssue(pki.IssueRequest{Type: name, Holder: holder}))
		if i < depth {
			// two alternatives, each a 2-term multiedge: 4 children/node
			*rules = append(*rules, fmt.Sprintf("%s <- %s, %s | %s, %s", name, next, next, next, next))
		}
	}
	f.aerospace.Profile = aeroProf
	f.aircraft.Profile = airProf
	f.aerospace.Policies = xtnl.MustPolicySet(xtnl.MustParsePolicies(joinLines(aeroRules))...)
	f.aircraft.Policies = xtnl.MustPolicySet(append(
		xtnl.MustParsePolicies("VoMembership <- WebDesignerQuality"),
		xtnl.MustParsePolicies(joinLines(airRules))...)...)

	out, _, err := Run(f.aerospace, f.aircraft, "VoMembership")
	if err != nil {
		t.Fatal(err)
	}
	if out.Succeeded {
		t.Fatal("policy bomb negotiation succeeded within an impossible bound")
	}
	if !strings.Contains(out.Reason, "exceeds") {
		t.Fatalf("reason = %q", out.Reason)
	}
}
