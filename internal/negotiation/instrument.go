package negotiation

import (
	"time"

	"trustvo/internal/telemetry"
)

// Phase names used in telemetry series and span names. They map onto the
// paper's two negotiation phases (§5): policy evaluation builds the
// negotiation tree, credential exchange walks the trust sequence.
const (
	phaseNameEval     = "policy-evaluation"
	phaseNameExchange = "credential-exchange"
)

// begin arms the endpoint's telemetry on first protocol activity: phase
// timing when the party has a Metrics registry, span tracing when it has
// a Recorder. Idempotent; all recording sites below are nil-tolerant, so
// an un-instrumented party pays one branch per site.
func (e *Endpoint) begin() {
	if !e.startedAt.IsZero() {
		return
	}
	now := time.Now()
	e.startedAt, e.phaseAt = now, now
	if e.party.Recorder != nil {
		e.trace = telemetry.NewTrace()
		e.rootSpan = e.trace.StartSpan("negotiation").SetAttr("role", e.role.String())
		e.phaseSpan = e.rootSpan.StartChild("phase:" + phaseNameEval)
	}
}

// Trace returns the endpoint's span trace, nil unless the party set a
// Recorder (which enables tracing) and the negotiation has started.
func (e *Endpoint) Trace() *telemetry.Trace { return e.trace }

// enterExchange transitions phase 1 → phase 2, closing out the
// policy-evaluation phase span and latency observation.
func (e *Endpoint) enterExchange() {
	e.phase = phaseExchange
	now := time.Now()
	if m := e.party.Metrics; m != nil {
		m.LatencyHistogram("tn_phase_seconds", "phase", phaseNameEval, "role", e.role.String()).
			Observe(now.Sub(e.phaseAt).Seconds())
	}
	e.phaseAt = now
	e.phaseSpan.End()
	e.phaseSpan = e.rootSpan.StartChild("phase:" + phaseNameExchange)
}

// finishTelemetry records the terminal observations: outcome counters,
// the final phase and whole-negotiation latencies, round and tree-size
// distributions, and hands the finished trace to the Recorder. prev is
// the phase the endpoint was in when it finished.
func (e *Endpoint) finishTelemetry(prev phase, o *Outcome) {
	if e.startedAt.IsZero() {
		return // finished before any begin (defensive; not reached today)
	}
	now := time.Now()
	result := "failure"
	if o.Succeeded {
		result = "success"
	}
	if m := e.party.Metrics; m != nil {
		role := e.role.String()
		m.Counter("tn_negotiations_total", "role", role, "result", result).Inc()
		phaseName := phaseNameEval
		if prev == phaseExchange {
			phaseName = phaseNameExchange
		}
		m.LatencyHistogram("tn_phase_seconds", "phase", phaseName, "role", role).
			Observe(now.Sub(e.phaseAt).Seconds())
		m.LatencyHistogram("tn_negotiation_seconds", "role", role).
			Observe(now.Sub(e.startedAt).Seconds())
		m.Histogram("tn_rounds", telemetry.CountBuckets, "role", role).Observe(float64(e.rounds))
		if e.tree != nil {
			m.Histogram("tn_tree_nodes", telemetry.CountBuckets, "role", role).
				Observe(float64(e.tree.Len()))
		}
	}
	e.phaseSpan.End()
	e.rootSpan.SetAttr("resource", e.resource).SetAttr("result", result)
	if o.Reason != "" {
		e.rootSpan.SetAttr("reason", o.Reason)
	}
	e.rootSpan.End()
	if e.party.Recorder != nil && e.trace != nil {
		e.party.Recorder(e.trace)
	}
}

// countDisclosureSent/Received/VerifyFailure are the negotiation-level
// counters of the paper's Fig. 9 cost drivers.

func (e *Endpoint) countDisclosureSent() {
	if m := e.party.Metrics; m != nil {
		m.Counter("tn_disclosures_sent_total", "role", e.role.String()).Inc()
	}
}

func (e *Endpoint) countDisclosureReceived() {
	if m := e.party.Metrics; m != nil {
		m.Counter("tn_disclosures_received_total", "role", e.role.String()).Inc()
	}
}

// failVerify is fail plus the verification-failure counter, for the
// credential-verification error paths.
func (e *Endpoint) failVerify(reason string) *Message {
	if m := e.party.Metrics; m != nil {
		m.Counter("tn_verification_failures_total", "role", e.role.String()).Inc()
	}
	return e.fail(reason)
}
