package negotiation

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"trustvo/internal/ontology"
	"trustvo/internal/pki"
	"trustvo/internal/telemetry"
	"trustvo/internal/xtnl"
)

// Role distinguishes the two sides of a negotiation.
type Role int

const (
	// Requester wants the resource.
	Requester Role = iota
	// Controller owns the resource.
	Controller
)

func (r Role) String() string {
	if r == Controller {
		return "controller"
	}
	return "requester"
}

type phase int

const (
	phaseEval phase = iota
	phaseExchange
	phaseDone
)

// Disclosed records one verified credential disclosure.
type Disclosed struct {
	By         string
	NodeID     string
	Credential *xtnl.Credential // clear view (selective disclosures show opened attrs only)
}

// Outcome is the result of a finished negotiation, available from
// Endpoint.Outcome once Done reports true.
type Outcome struct {
	Succeeded bool
	Resource  string
	Reason    string // failure cause ("" on success)
	Grant     []byte // MsgSuccess payload (requester side)
	// Received lists the counterpart credentials this endpoint verified.
	Received []Disclosed
	// Sent lists the credentials this endpoint disclosed.
	Sent []Disclosed
	// Rounds counts protocol messages processed (sent + received).
	Rounds int
}

// Endpoint is one party's state machine for a single negotiation.
// It is not safe for concurrent use; drive it from one goroutine.
type Endpoint struct {
	party    *Party
	role     Role
	peer     string
	resource string

	tree   *Tree
	chosen map[string]candidate // my COMPLY nodes -> credential to disclose
	// chosenAlts maps my EXPANDED nodes to the candidate backing each
	// policy alternative, so the disclosure matches whichever
	// alternative the trust sequence satisfied.
	chosenAlts map[string][]candidate

	seq    []SequenceEntry
	seqPos int

	phase         phase
	rounds        int
	peerProof     bool   // peer demands ownership proofs
	lastNonceRecv []byte // peer's latest challenge (sign this)
	lastNonceSent []byte // my latest challenge (peer signs this)
	disclosed     map[string]bool

	// telemetry state (see instrument.go); zero-valued when the party
	// carries neither a Metrics registry nor a Recorder.
	startedAt time.Time
	phaseAt   time.Time
	trace     *telemetry.Trace
	rootSpan  *telemetry.Span
	phaseSpan *telemetry.Span

	outcome *Outcome
}

// NewRequester creates the requesting endpoint for resource.
func NewRequester(p *Party, resource string) *Endpoint {
	return &Endpoint{
		party:      p,
		role:       Requester,
		resource:   resource,
		chosen:     make(map[string]candidate),
		chosenAlts: make(map[string][]candidate),
		disclosed:  make(map[string]bool),
	}
}

// NewController creates the controlling endpoint; the resource is
// learned from the incoming MsgRequest.
func NewController(p *Party) *Endpoint {
	return &Endpoint{
		party:      p,
		role:       Controller,
		chosen:     make(map[string]candidate),
		chosenAlts: make(map[string][]candidate),
		disclosed:  make(map[string]bool),
	}
}

// Done reports whether the negotiation has finished on this endpoint.
func (e *Endpoint) Done() bool { return e.phase == phaseDone }

// Outcome returns the result; nil until Done.
func (e *Endpoint) Outcome() *Outcome { return e.outcome }

// Party returns the endpoint's party.
func (e *Endpoint) Party() *Party { return e.party }

// Tree exposes the endpoint's copy of the negotiation tree (nil before
// the first message). Read-only.
func (e *Endpoint) Tree() *Tree { return e.tree }

// Start emits the opening MsgRequest. Requester endpoints only.
func (e *Endpoint) Start() (*Message, error) {
	if e.role != Requester {
		return nil, errors.New("negotiation: only requesters start")
	}
	if e.tree != nil {
		return nil, errors.New("negotiation: already started")
	}
	e.begin()
	e.tree = NewTree(e.resource, "") // controller name learned from reply
	nonce, err := pki.NewNonce()
	if err != nil {
		return nil, err
	}
	e.lastNonceSent = nonce
	e.rounds++
	m := &Message{
		Type:         MsgRequest,
		From:         e.party.Name,
		Resource:     e.resource,
		Strategy:     e.party.Strategy,
		RequireProof: e.party.Strategy.RequiresOwnershipProof(),
		Nonce:        nonce,
		// Present a cached trust ticket, if any: the controller may
		// grant immediately, skipping both negotiation phases.
		Ticket: e.party.Tickets.GetByResource(e.resource, e.party.now()),
	}
	if e.party.Trace != nil {
		e.party.Trace("send", m)
	}
	return m, nil
}

// Handle processes an incoming message and returns the reply, or nil
// when the message was terminal. Protocol violations and verification
// failures produce a MsgFail reply (and mark the endpoint done), not an
// error; errors are reserved for local faults (e.g. nonce generation).
func (e *Endpoint) Handle(in *Message) (*Message, error) {
	if e.phase == phaseDone {
		return nil, errors.New("negotiation: endpoint already done")
	}
	e.begin()
	sp := e.phaseSpan.StartChild("recv:" + in.Type.String())
	defer sp.End()
	if e.party.Trace != nil {
		e.party.Trace("recv", in)
	}
	e.rounds++
	if e.rounds > e.party.maxRounds() {
		return e.fail("round limit exceeded"), nil
	}
	if len(in.Nonce) > 0 {
		e.lastNonceRecv = in.Nonce
	}
	if in.RequireProof {
		e.peerProof = true
	}
	if e.peer == "" {
		e.peer = in.From
	}

	switch in.Type {
	case MsgRequest:
		return e.handleRequest(in)
	case MsgPolicy, MsgContinue:
		return e.handlePolicy(in)
	case MsgSequence:
		return e.handleSequence(in)
	case MsgCredential:
		return e.handleCredential(in)
	case MsgAck:
		if e.phase != phaseExchange {
			return e.fail("unexpected ack during policy evaluation"), nil
		}
		return e.exchangeTurn()
	case MsgSuccess:
		if in.Ticket != nil {
			e.party.Tickets.Put(in.Ticket)
		}
		e.finish(&Outcome{Succeeded: true, Resource: e.resource, Grant: in.Grant})
		return nil, nil
	case MsgFail:
		e.finish(&Outcome{Succeeded: false, Resource: e.resource, Reason: in.Reason})
		return nil, nil
	default:
		return e.fail(fmt.Sprintf("unknown message type %v", in.Type)), nil
	}
}

// ---- phase 1: policy evaluation ----

func (e *Endpoint) handleRequest(in *Message) (*Message, error) {
	if e.role != Controller || e.tree != nil {
		return e.fail("unexpected request"), nil
	}
	e.resource = in.Resource
	e.tree = NewTree(in.Resource, e.party.Name)

	// Trust-ticket fast path: a valid ticket this controller issued for
	// this peer and resource skips the negotiation. An invalid ticket is
	// ignored (the negotiation proceeds normally), not an error.
	if in.Ticket != nil && e.party.Keys != nil &&
		in.Ticket.Verify(e.party.Keys.Public, in.From, in.Resource, e.party.now()) == nil {
		return e.grant()
	}

	// The root is answered from policy alone: a controller only releases
	// resources it holds an explicit rule for.
	pols := e.party.Policies.For(e.resource)
	if len(pols) == 0 {
		return e.fail(fmt.Sprintf("resource %q not offered", e.resource)), nil
	}
	for _, pol := range pols {
		if pol.Deliver {
			// Freely deliverable resource: grant immediately.
			return e.grant()
		}
	}
	var alts [][]xtnl.Term
	outPols := pols
	if e.party.AbstractLevels > 0 && e.party.Mapper != nil {
		outPols = make([]*xtnl.Policy, len(pols))
		for i, pol := range pols {
			outPols[i] = ontology.Abstract(pol, e.party.Mapper.Ontology, e.party.AbstractLevels)
		}
	}
	for _, pol := range outPols {
		alts = append(alts, pol.Terms)
	}
	if _, err := e.tree.Expand(RootID, alts, e.peer); err != nil {
		return e.fail("internal: " + err.Error()), nil
	}
	reply, err := e.evalReply([]Answer{{NodeID: RootID, Kind: AnswerPolicies, Policies: outPols}})
	return reply, err
}

func (e *Endpoint) handlePolicy(in *Message) (*Message, error) {
	if e.phase != phaseEval {
		return e.fail("unexpected policy message during credential exchange"), nil
	}
	if e.tree == nil {
		return e.fail("policy message before request"), nil
	}
	// Apply the peer's answers to the mirror tree.
	for i := range in.Answers {
		if failMsg := e.applyAnswer(&in.Answers[i]); failMsg != nil {
			return failMsg, nil
		}
		if e.tree.Len() > e.party.maxTreeNodes() {
			return e.fail(fmt.Sprintf("negotiation tree exceeds %d nodes", e.party.maxTreeNodes())), nil
		}
	}
	if e.tree.Dead(RootID) {
		return e.fail("no satisfiable view: all alternatives failed"), nil
	}
	return e.evalReply(nil)
}

// applyAnswer integrates one peer answer; it returns a MsgFail on
// protocol violations, nil otherwise.
func (e *Endpoint) applyAnswer(a *Answer) *Message {
	n := e.tree.Node(a.NodeID)
	if n == nil {
		return e.fail(fmt.Sprintf("answer for unknown node %s", a.NodeID))
	}
	if n.State != StateOpen {
		return e.fail(fmt.Sprintf("answer for already-answered node %s", a.NodeID))
	}
	if n.Owner != e.peer && !(a.NodeID == RootID && n.Owner == "") {
		return e.fail(fmt.Sprintf("peer answered node %s it does not own", a.NodeID))
	}
	if a.NodeID == RootID && n.Owner == "" {
		n.Owner = e.peer // requester learns the controller's name
	}
	switch a.Kind {
	case AnswerDeny:
		e.tree.Deny(a.NodeID)
	case AnswerComply:
		e.tree.Comply(a.NodeID)
		if a.Disclosure != nil {
			// Eager (trusting) disclosure piggybacked on the answer.
			if _, failMsg := e.verifyDisclosure(a.Disclosure, n.Term); failMsg != nil {
				return failMsg
			}
			e.disclosed[a.NodeID] = true
		}
	case AnswerPolicies:
		var alts [][]xtnl.Term
		for _, p := range a.Policies {
			if p.Deliver || len(p.Terms) == 0 {
				return e.fail(fmt.Sprintf("invalid protecting policy for node %s", a.NodeID))
			}
			alts = append(alts, p.Terms)
		}
		if len(alts) == 0 {
			return e.fail(fmt.Sprintf("policies answer without policies for node %s", a.NodeID))
		}
		if _, err := e.tree.Expand(a.NodeID, alts, e.party.Name); err != nil {
			return e.fail("protocol: " + err.Error())
		}
	}
	return nil
}

// evalReply computes the next phase-1 message: answers to my open nodes
// (prepended by preAnswers the caller already produced), or — when the
// tree is complete — the trust-sequence proposal / failure.
func (e *Endpoint) evalReply(preAnswers []Answer) (*Message, error) {
	answers := preAnswers
	open := e.tree.OpenNodes(e.party.Name)
	for _, id := range open {
		if e.party.Strategy.OneAnswerPerMessage() && len(answers) >= 1 {
			break // strong-suspicious: one answer per message
		}
		a, err := e.answerNode(id)
		if err != nil {
			return e.fail(err.Error()), nil
		}
		answers = append(answers, a)
		if e.tree.Len() > e.party.maxTreeNodes() {
			return e.fail(fmt.Sprintf("negotiation tree exceeds %d nodes", e.party.maxTreeNodes())), nil
		}
	}
	if len(answers) > 0 {
		return e.send(&Message{Type: MsgPolicy, Answers: answers})
	}
	if !e.tree.Complete() {
		// Peer still owes answers (its strong-suspicious pacing).
		return e.send(&Message{Type: MsgContinue})
	}
	if e.tree.Dead(RootID) || !e.tree.Satisfiable(RootID) {
		return e.fail("no satisfiable view"), nil
	}
	// Phase 1 succeeded: propose the trust sequence. If the first due
	// disclosures are ours, piggyback them (the paper's interleaved
	// exchange: an acknowledgment "asks for the subsequent credential…
	// otherwise, a credential belonging to the subsequent set… is sent").
	e.seq = e.tree.Sequence()
	e.enterExchange()
	ids := make([]string, len(e.seq))
	for i, s := range e.seq {
		ids[i] = s.NodeID
	}
	ds, failMsg := e.discloseRun()
	if failMsg != nil {
		return failMsg, nil
	}
	return e.send(&Message{Type: MsgSequence, Sequence: ids, Disclosures: ds})
}

// answerNode evaluates one of my open nodes (Algorithm-1-backed).
func (e *Endpoint) answerNode(id string) (Answer, error) {
	n := e.tree.Node(id)
	cands, err := e.party.resolveTerm(n.Term)
	if err != nil {
		e.tree.Deny(id)
		return Answer{NodeID: id, Kind: AnswerDeny, Reason: "credential not possessed"}, nil
	}
	if e.tree.HasAncestorTerm(id, e.party.Name, n.Term) {
		// Mutual-requirement cycle: this exact requirement already sits
		// higher on the path, so its disclosure is already committed in
		// this view — comply rather than re-expand. This resolves the
		// paper's §5.1 interlock ("Certification ← PrivacyRegulator"
		// answered by "PrivacyRegulator ← PrivacyRegulator"): both
		// parties hold the credential and exchange mutually; the trust
		// sequence dedupes the repeated entry.
		e.chosen[id] = cands[0]
		e.tree.Comply(id)
		a := Answer{NodeID: id, Kind: AnswerComply}
		if e.party.Strategy.EagerDisclosure() {
			d, err := e.buildDisclosure(id, cands[0])
			if err != nil {
				return Answer{}, err
			}
			a.Disclosure = d
			e.disclosed[id] = true
			e.recordSent(id, cands[0])
		}
		return a, nil
	}
	// Prefer a freely disclosable candidate (least sensitive first).
	for _, c := range cands {
		if _, free := e.party.protectingPolicies(c.cred.Type); free {
			e.chosen[id] = c
			e.tree.Comply(id)
			a := Answer{NodeID: id, Kind: AnswerComply}
			if e.party.Strategy.EagerDisclosure() {
				d, err := e.buildDisclosure(id, c)
				if err != nil {
					return Answer{}, err
				}
				a.Disclosure = d
				e.disclosed[id] = true
				e.recordSent(id, c)
			}
			return a, nil
		}
	}
	// Every candidate is protected: expose the protecting policies of
	// every distinct candidate type as alternatives, remembering which
	// candidate backs each alternative so the later disclosure matches
	// whichever branch the trust sequence satisfies.
	var pickPols []*xtnl.Policy
	var altCands []candidate
	seenType := make(map[string]bool)
	for _, c := range cands {
		if seenType[c.cred.Type] {
			continue // same-type candidates share policies
		}
		seenType[c.cred.Type] = true
		pols, _ := e.party.protectingPolicies(c.cred.Type)
		for _, p := range pols {
			pickPols = append(pickPols, p)
			altCands = append(altCands, c)
		}
	}
	e.chosenAlts[id] = altCands
	var alts [][]xtnl.Term
	for _, p := range pickPols {
		alts = append(alts, p.Terms)
	}
	if _, err := e.tree.Expand(id, alts, e.peer); err != nil {
		return Answer{}, err
	}
	return Answer{NodeID: id, Kind: AnswerPolicies, Policies: pickPols}, nil
}

// ---- phase 2: credential exchange ----

func (e *Endpoint) handleSequence(in *Message) (*Message, error) {
	if e.phase != phaseEval {
		return e.fail("unexpected sequence message"), nil
	}
	if !e.tree.Complete() || !e.tree.Satisfiable(RootID) {
		return e.fail("sequence proposed on incomplete tree"), nil
	}
	want := e.tree.Sequence()
	if len(want) != len(in.Sequence) {
		return e.fail("trust sequence mismatch"), nil
	}
	for i, s := range want {
		if s.NodeID != in.Sequence[i] {
			return e.fail("trust sequence mismatch"), nil
		}
	}
	e.seq = want
	e.enterExchange()
	if failMsg := e.processDisclosures(in.Disclosures); failMsg != nil {
		return failMsg, nil
	}
	return e.exchangeTurn()
}

func (e *Endpoint) handleCredential(in *Message) (*Message, error) {
	if e.phase != phaseExchange {
		return e.fail("unexpected credential message"), nil
	}
	if failMsg := e.processDisclosures(in.Disclosures); failMsg != nil {
		return failMsg, nil
	}
	return e.exchangeTurn()
}

// processDisclosures verifies a batch of peer disclosures against the
// trust sequence, advancing the position. It returns a MsgFail on any
// violation.
func (e *Endpoint) processDisclosures(ds []CredentialDisclosure) *Message {
	for i := range ds {
		d := &ds[i]
		e.skipDisclosed()
		if e.seqPos >= len(e.seq) {
			return e.fail("disclosure beyond trust sequence")
		}
		entry := e.seq[e.seqPos]
		if entry.Owner != e.peer {
			return e.fail(fmt.Sprintf("out-of-turn disclosure for node %s", d.NodeID))
		}
		if d.NodeID != entry.NodeID {
			return e.fail(fmt.Sprintf("disclosure for node %s, expected %s", d.NodeID, entry.NodeID))
		}
		if _, failMsg := e.verifyDisclosure(d, entry.Term); failMsg != nil {
			return failMsg
		}
		e.disclosed[entry.NodeID] = true
		e.seqPos++
	}
	return nil
}

// skipDisclosed advances seqPos past entries already handled (eager
// trusting disclosures).
func (e *Endpoint) skipDisclosed() {
	for e.seqPos < len(e.seq) && e.disclosed[e.seq[e.seqPos].NodeID] {
		e.seqPos++
	}
}

// exchangeTurn advances the credential-exchange phase from this
// endpoint's perspective.
func (e *Endpoint) exchangeTurn() (*Message, error) {
	e.skipDisclosed()
	if e.seqPos >= len(e.seq) {
		if e.role == Controller {
			return e.grant()
		}
		// Requester: everything disclosed and verified; ask the
		// controller to release the resource.
		return e.send(&Message{Type: MsgAck})
	}
	entry := e.seq[e.seqPos]
	if entry.Owner != e.party.Name {
		// Peer's turn; acknowledge and wait.
		return e.send(&Message{Type: MsgAck})
	}
	ds, failMsg := e.discloseRun()
	if failMsg != nil {
		return failMsg, nil
	}
	return e.send(&Message{Type: MsgCredential, Disclosures: ds})
}

// discloseRun builds disclosures for the maximal run of consecutive
// sequence entries owned by this endpoint, starting at the current
// position. An empty run is fine (nil, nil).
func (e *Endpoint) discloseRun() ([]CredentialDisclosure, *Message) {
	var ds []CredentialDisclosure
	for e.seqPos < len(e.seq) {
		e.skipDisclosed()
		if e.seqPos >= len(e.seq) || e.seq[e.seqPos].Owner != e.party.Name {
			break
		}
		cur := e.seq[e.seqPos]
		pick, ok := e.chosen[cur.NodeID]
		if !ok {
			// Expanded node: disclose the candidate backing the
			// alternative the trust sequence actually satisfied.
			if ai := e.tree.ChosenAlt(cur.NodeID); ai >= 0 {
				if alts := e.chosenAlts[cur.NodeID]; ai < len(alts) {
					pick, ok = alts[ai], true
				}
			}
		}
		if !ok {
			return nil, e.fail("internal: no chosen credential for node " + cur.NodeID)
		}
		d, err := e.buildDisclosure(cur.NodeID, pick)
		if err != nil {
			return nil, e.fail(err.Error())
		}
		ds = append(ds, *d)
		e.disclosed[cur.NodeID] = true
		e.recordSent(cur.NodeID, pick)
		e.seqPos++
	}
	return ds, nil
}

// ErrSelectiveRequired reports the §6.3 restriction: a suspicious-family
// strategy must partially hide credential content, which the selected
// credential format cannot do.
var ErrSelectiveRequired = errors.New(
	"negotiation: strategy requires selective disclosure but credential format cannot partially hide content (§6.3)")

// buildDisclosure assembles the wire disclosure for a chosen candidate.
func (e *Endpoint) buildDisclosure(nodeID string, pick candidate) (*CredentialDisclosure, error) {
	d := &CredentialDisclosure{NodeID: nodeID}
	term := e.tree.Node(nodeID).Term
	if e.party.Strategy.RequiresSelectiveDisclosure() {
		if pick.selective == nil {
			return nil, ErrSelectiveRequired
		}
		names := conditionAttributes(term.Conditions, pick.cred)
		disc, err := pick.selective.Disclose(names...)
		if err != nil {
			return nil, err
		}
		d.Committed = disc.Committed
		for _, o := range disc.Opened {
			d.Opened = append(d.Opened, OpenedAttr(o))
		}
	} else if der, ok := e.party.X509[pick.cred.ID]; ok &&
		(e.party.PreferX509 || len(pick.cred.Signature) == 0) {
		// §6.3 dual-format support: disclose the X.509 encoding. It is
		// mandatory for credentials that exist only in X.509 form
		// (participation tickets have no XML signature).
		d.X509 = der
	} else {
		d.Credential = pick.cred
		if pick.selective != nil {
			// Non-suspicious strategies may still hold selective
			// credentials; disclose the full committed form plus all
			// openings so the receiver can verify the signature.
			disc, err := pick.selective.Disclose(pick.selective.AttributeNames()...)
			if err != nil {
				return nil, err
			}
			d.Credential = nil
			d.Committed = disc.Committed
			for _, o := range disc.Opened {
				d.Opened = append(d.Opened, OpenedAttr(o))
			}
		}
	}
	if e.peerProof {
		if e.party.Keys == nil {
			return nil, errors.New("negotiation: counterpart demands ownership proofs but party has no keys")
		}
		if len(e.lastNonceRecv) == 0 {
			return nil, errors.New("negotiation: no challenge nonce to prove ownership against")
		}
		d.OwnershipProof = pki.ProveOwnership(e.party.Keys, e.lastNonceRecv)
	}
	d.Chain = e.party.Chains
	return d, nil
}

// verifyDisclosure checks one received disclosure against the expected
// term: issuer trust (with chains), validity, revocation, ownership
// proof when demanded, and term satisfaction. It returns the clear view
// on success or a MsgFail to emit on failure.
func (e *Endpoint) verifyDisclosure(d *CredentialDisclosure, term xtnl.Term) (*xtnl.Credential, *Message) {
	now := e.party.now()
	var view *xtnl.Credential
	var committed *xtnl.Credential
	switch {
	case d.Committed != nil:
		committed = d.Committed
		if _, err := e.party.Trust.VerifyChain(d.Committed, d.Chain, now); err != nil {
			return nil, e.failVerify("credential verification failed: " + err.Error())
		}
		pd := &pki.Disclosure{Committed: d.Committed}
		for _, o := range d.Opened {
			pd.Opened = append(pd.Opened, pki.OpenedAttr(o))
		}
		v, err := pki.VerifyDisclosure(pd)
		if err != nil {
			return nil, e.failVerify("selective disclosure invalid: " + err.Error())
		}
		view = v
	case d.Credential != nil:
		committed = d.Credential
		if _, err := e.party.Trust.VerifyChain(d.Credential, d.Chain, now); err != nil {
			return nil, e.failVerify("credential verification failed: " + err.Error())
		}
		view = d.Credential
	case len(d.X509) > 0:
		v, err := e.party.Trust.VerifyX509Attribute(d.X509, now)
		if err != nil {
			return nil, e.failVerify("x509 credential verification failed: " + err.Error())
		}
		committed = v
		view = v
	default:
		return nil, e.failVerify("empty disclosure")
	}
	if e.party.Strategy.RequiresOwnershipProof() {
		if len(e.lastNonceSent) == 0 {
			return nil, e.failVerify("internal: no challenge nonce issued")
		}
		if err := pki.VerifyOwnership(committed, e.lastNonceSent, d.OwnershipProof); err != nil {
			return nil, e.failVerify("ownership proof failed: " + err.Error())
		}
	}
	if !e.termSatisfied(term, view) {
		return nil, e.failVerify(fmt.Sprintf("disclosed credential %s does not satisfy term %s", view.ID, term))
	}
	e.countDisclosureReceived()
	e.ensureOutcome().Received = append(e.outcome.Received, Disclosed{
		By: e.peer, NodeID: d.NodeID, Credential: view,
	})
	return view, nil
}

// termSatisfied checks a credential against a term, resolving concept
// references through the receiver's ontology.
func (e *Endpoint) termSatisfied(term xtnl.Term, cred *xtnl.Credential) bool {
	concept, isConcept := ontology.AsConceptRef(term.CredType)
	if !isConcept {
		return term.SatisfiedBy(cred)
	}
	if e.party.Mapper == nil {
		return false
	}
	implemented := false
	for _, im := range e.party.Mapper.Ontology.ImplementationsOf(concept) {
		if im.CredType == cred.Type {
			implemented = true
			break
		}
	}
	if !implemented {
		return false
	}
	conds := e.party.Mapper.Ontology.ToImplConditions(concept, cred.Type, term.Conditions)
	return xtnl.Term{Conditions: conds}.SatisfiedBy(cred)
}

// conditionAttributes extracts the content-attribute names referenced by
// the term's XPath conditions, so a suspicious discloser opens only
// those. Conditions that reference no recognizable content attribute
// cause a full opening of the mentioned credential attributes, keeping
// verification possible.
func conditionAttributes(conds []string, cred *xtnl.Credential) []string {
	names := make(map[string]bool)
	analyzed := true
	for _, c := range conds {
		found := false
		for _, marker := range []string{"content/"} {
			idx := 0
			for {
				j := strings.Index(c[idx:], marker)
				if j < 0 {
					break
				}
				start := idx + j + len(marker)
				end := start
				for end < len(c) && (isIdentRune(c[end])) {
					end++
				}
				if end > start {
					names[c[start:end]] = true
					found = true
				}
				idx = end
			}
		}
		if !found {
			analyzed = false
		}
	}
	if !analyzed {
		// Fallback: open everything so the condition can evaluate.
		var all []string
		for _, a := range cred.Attributes {
			all = append(all, a.Name)
		}
		return all
	}
	var out []string
	for _, a := range cred.Attributes {
		if names[a.Name] {
			out = append(out, a.Name)
		}
	}
	return out
}

func isIdentRune(b byte) bool {
	return b == '_' || b == '-' || b == '.' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

// ---- terminal transitions ----

func (e *Endpoint) grant() (*Message, error) {
	var grant []byte
	if e.party.Grant != nil {
		g, err := e.party.Grant(e.resource, e.peer)
		if err != nil {
			return e.fail("grant failed: " + err.Error()), nil
		}
		grant = g
	}
	msg := &Message{Type: MsgSuccess, Grant: grant}
	if e.party.TicketTTL > 0 && e.party.Keys != nil {
		msg.Ticket = IssueTicket(e.party.Keys, e.party.Name, e.peer, e.resource, e.party.TicketTTL)
	}
	out, err := e.send(msg)
	if err != nil {
		return nil, err
	}
	e.finish(&Outcome{Succeeded: true, Resource: e.resource})
	return out, nil
}

// fail emits a MsgFail and finishes the endpoint.
func (e *Endpoint) fail(reason string) *Message {
	msg := &Message{Type: MsgFail, From: e.party.Name, Reason: reason}
	if e.party.Trace != nil {
		e.party.Trace("send", msg)
	}
	e.finish(&Outcome{Succeeded: false, Resource: e.resource, Reason: reason})
	return msg
}

func (e *Endpoint) finish(o *Outcome) {
	prev := e.phase
	base := e.ensureOutcome()
	base.Succeeded = o.Succeeded
	base.Resource = o.Resource
	base.Reason = o.Reason
	base.Grant = o.Grant
	base.Rounds = e.rounds
	e.phase = phaseDone
	e.finishTelemetry(prev, base)
}

func (e *Endpoint) ensureOutcome() *Outcome {
	if e.outcome == nil {
		e.outcome = &Outcome{Resource: e.resource}
	}
	return e.outcome
}

func (e *Endpoint) recordSent(nodeID string, pick candidate) {
	e.countDisclosureSent()
	e.ensureOutcome().Sent = append(e.outcome.Sent, Disclosed{
		By: e.party.Name, NodeID: nodeID, Credential: pick.cred,
	})
}

// send stamps common fields on an outgoing message and counts the round.
func (e *Endpoint) send(m *Message) (*Message, error) {
	m.From = e.party.Name
	m.Resource = e.resource
	if e.party.Strategy.RequiresOwnershipProof() {
		m.RequireProof = true
	}
	nonce, err := pki.NewNonce()
	if err != nil {
		return nil, err
	}
	m.Nonce = nonce
	e.lastNonceSent = nonce
	e.rounds++
	if e.party.Trace != nil {
		e.party.Trace("send", m)
	}
	return m, nil
}

// Dead reports whether the subtree rooted at id can no longer succeed:
// the node is denied, or it is expanded and every alternative contains a
// dead child. Open nodes are not dead (still undetermined).
func (t *Tree) Dead(id string) bool {
	n := t.nodes[id]
	if n == nil {
		return true
	}
	switch n.State {
	case StateDenied:
		return true
	case StateExpanded:
		for ai := range n.Alts {
			altDead := false
			for _, cid := range n.Alts[ai] {
				if t.Dead(cid) {
					altDead = true
					break
				}
			}
			if !altDead {
				return false
			}
		}
		return true
	default:
		return false
	}
}
