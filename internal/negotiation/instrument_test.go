package negotiation

import (
	"strings"
	"testing"

	"trustvo/internal/pki"
	"trustvo/internal/telemetry"
	"trustvo/internal/xtnl"
)

// instrumentedPair builds a requester holding an EmployeeBadge and a
// controller protecting Report behind it, both wired to the same metrics
// registry; the requester also records its span trace.
func instrumentedPair(t *testing.T) (req, ctl *Party, reg *telemetry.Registry, traces *[]*telemetry.Trace) {
	t.Helper()
	ca := pki.MustNewAuthority("CA")
	reg = telemetry.NewRegistry()
	var got []*telemetry.Trace
	req = &Party{
		Name:     "alice",
		Profile:  xtnl.NewProfile("alice"),
		Policies: xtnl.MustPolicySet(),
		Trust:    pki.NewTrustStore(ca),
		Metrics:  reg,
		Recorder: func(tr *telemetry.Trace) { got = append(got, tr) },
	}
	req.Profile.Add(ca.MustIssue(pki.IssueRequest{Type: "EmployeeBadge", Holder: "alice"}))
	ctl = &Party{
		Name:     "bob",
		Profile:  xtnl.NewProfile("bob"),
		Policies: xtnl.MustPolicySet(xtnl.MustParsePolicies("Report <- EmployeeBadge")...),
		Trust:    pki.NewTrustStore(ca),
		Metrics:  reg,
	}
	return req, ctl, reg, &got
}

func TestNegotiationMetrics(t *testing.T) {
	req, ctl, reg, _ := instrumentedPair(t)
	out, _, err := Run(req, ctl, "Report")
	if err != nil || !out.Succeeded {
		t.Fatalf("run: %v %+v", err, out)
	}
	if got := reg.Counter("tn_negotiations_total", "role", "requester", "result", "success").Value(); got != 1 {
		t.Fatalf("requester successes = %d", got)
	}
	if got := reg.Counter("tn_negotiations_total", "role", "controller", "result", "success").Value(); got != 1 {
		t.Fatalf("controller successes = %d", got)
	}
	if got := reg.Counter("tn_disclosures_sent_total", "role", "requester").Value(); got != 1 {
		t.Fatalf("disclosures sent = %d", got)
	}
	if got := reg.Counter("tn_disclosures_received_total", "role", "controller").Value(); got != 1 {
		t.Fatalf("disclosures received = %d", got)
	}
	if got := reg.Counter("tn_verification_failures_total", "role", "controller").Value(); got != 0 {
		t.Fatalf("verification failures = %d", got)
	}
	// both phases observed for both roles, and a whole-negotiation latency
	for _, role := range []string{"requester", "controller"} {
		for _, ph := range []string{phaseNameEval, phaseNameExchange} {
			h := reg.LatencyHistogram("tn_phase_seconds", "phase", ph, "role", role)
			if s := h.Snapshot(); s.Count != 1 {
				t.Fatalf("phase %s/%s observations = %d", ph, role, s.Count)
			}
		}
		if s := reg.LatencyHistogram("tn_negotiation_seconds", "role", role).Snapshot(); s.Count != 1 {
			t.Fatalf("negotiation latency %s observations = %d", role, s.Count)
		}
		if s := reg.Histogram("tn_rounds", telemetry.CountBuckets, "role", role).Snapshot(); s.Count != 1 {
			t.Fatalf("rounds %s observations = %d", role, s.Count)
		}
		if s := reg.Histogram("tn_tree_nodes", telemetry.CountBuckets, "role", role).Snapshot(); s.Count != 1 || s.Sum < 2 {
			t.Fatalf("tree nodes %s: %+v", role, s)
		}
	}
}

func TestNegotiationTrace(t *testing.T) {
	req, ctl, _, traces := instrumentedPair(t)
	out, _, err := Run(req, ctl, "Report")
	if err != nil || !out.Succeeded {
		t.Fatalf("run: %v %+v", err, out)
	}
	if len(*traces) != 1 {
		t.Fatalf("recorded %d traces", len(*traces))
	}
	tr := (*traces)[0]
	spans := tr.Spans()
	if len(spans) < 4 {
		t.Fatalf("spans = %d: %s", len(spans), tr.String())
	}
	root := spans[0]
	if root.Name != "negotiation" || root.ParentID != 0 || root.Finish.IsZero() {
		t.Fatalf("root span: %+v", root)
	}
	var sawEval, sawExchange, sawMsg bool
	for _, s := range spans[1:] {
		switch {
		case s.Name == "phase:"+phaseNameEval:
			sawEval = true
			if s.ParentID != root.ID {
				t.Fatalf("eval phase parent = %d", s.ParentID)
			}
		case s.Name == "phase:"+phaseNameExchange:
			sawExchange = true
			if s.ParentID != root.ID {
				t.Fatalf("exchange phase parent = %d", s.ParentID)
			}
		case strings.HasPrefix(s.Name, "recv:"):
			sawMsg = true
			if s.ParentID == 0 || s.ParentID == root.ID {
				t.Fatalf("message span %s parented to %d", s.Name, s.ParentID)
			}
		}
		if s.Finish.IsZero() {
			t.Fatalf("span %s left open:\n%s", s.Name, tr.String())
		}
	}
	if !sawEval || !sawExchange || !sawMsg {
		t.Fatalf("missing spans (eval=%v exchange=%v msg=%v):\n%s", sawEval, sawExchange, sawMsg, tr.String())
	}
	// the rendered trace carries the outcome annotations
	rendered := tr.String()
	if !strings.Contains(rendered, "result=success") || !strings.Contains(rendered, "resource=Report") {
		t.Fatalf("rendered trace:\n%s", rendered)
	}
	// the accessor exposes the same trace from the endpoint side
	reqEp := NewRequester(req, "Report")
	if reqEp.Trace() != nil {
		t.Fatal("trace non-nil before start")
	}
	msg, err := reqEp.Start()
	if err != nil {
		t.Fatal(err)
	}
	if reqEp.Trace() == nil {
		t.Fatal("trace nil after start with Recorder set")
	}
	_ = msg
}

func TestVerificationFailureCounted(t *testing.T) {
	req, ctl, reg, _ := instrumentedPair(t)
	// the requester's badge comes from a CA the controller does not trust
	rogue := pki.MustNewAuthority("Rogue")
	req.Profile = xtnl.NewProfile("alice")
	req.Profile.Add(rogue.MustIssue(pki.IssueRequest{Type: "EmployeeBadge", Holder: "alice"}))
	out, _, err := Run(req, ctl, "Report")
	if err != nil {
		t.Fatal(err)
	}
	if out.Succeeded {
		t.Fatal("untrusted credential accepted")
	}
	if got := reg.Counter("tn_verification_failures_total", "role", "controller").Value(); got != 1 {
		t.Fatalf("verification failures = %d", got)
	}
	if got := reg.Counter("tn_negotiations_total", "role", "controller", "result", "failure").Value(); got != 1 {
		t.Fatalf("controller failures = %d", got)
	}
}

func TestUninstrumentedPartyStillNegotiates(t *testing.T) {
	req, ctl, _, _ := instrumentedPair(t)
	req.Metrics, req.Recorder, ctl.Metrics = nil, nil, nil
	out, _, err := Run(req, ctl, "Report")
	if err != nil || !out.Succeeded {
		t.Fatalf("run: %v %+v", err, out)
	}
	ep := NewRequester(req, "Report")
	if _, err := ep.Start(); err != nil {
		t.Fatal(err)
	}
	if ep.Trace() != nil {
		t.Fatal("trace allocated without Recorder")
	}
}
