package negotiation

import (
	"strings"
	"testing"

	"trustvo/internal/xtnl"
)

// TestFig2WorkedExample reproduces the paper's Fig. 2 negotiation tree:
// the Aerospace company requests a VO Membership certificate from the
// Aircraft company. The Aircraft company's policy is
// VoMembership <- WebDesignerQuality; the Aerospace company protects its
// WebDesignerQuality credential with two alternatives —
// Certification <- AAACreditation OR Certification <- BalanceSheet —
// yielding one simple edge and a pair of alternative edges.
func TestFig2WorkedExample(t *testing.T) {
	tr := NewTree("VoMembership", "AircraftCo")

	// Aircraft company's policy expands the root with one term owned by
	// the Aerospace company.
	kids, err := tr.Expand(RootID, [][]xtnl.Term{{{CredType: "WebDesignerQuality"}}}, "AerospaceCo")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 1 {
		t.Fatalf("root expansion created %d children", len(kids))
	}
	wdq := kids[0]
	if wdq.Owner != "AerospaceCo" || tr.Root().Multiedge(0) {
		t.Fatalf("unexpected child: %+v", wdq)
	}

	// The Aerospace company's alternatives for its quality credential:
	// prove AAA accreditation OR disclose a balance sheet — two edges
	// from the same node (the tree's alternative branches).
	alts := [][]xtnl.Term{
		{{CredType: "AAACreditation"}},
		{{CredType: "BalanceSheet"}},
	}
	kids, err = tr.Expand(wdq.ID, alts, "AircraftCo")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 {
		t.Fatalf("alternatives created %d children", len(kids))
	}

	// The Aircraft company can freely show the AAA accreditation; the
	// balance sheet branch is denied.
	tr.Comply(kids[0].ID)
	tr.Deny(kids[1].ID)

	if !tr.Satisfiable(RootID) {
		t.Fatal("tree should be satisfiable through the AAA branch")
	}
	seq := tr.Sequence()
	if len(seq) != 2 {
		t.Fatalf("sequence = %d entries, want 2 (AAACreditation then WebDesignerQuality)", len(seq))
	}
	// child-before-parent ordering
	if seq[0].Term.CredType != "AAACreditation" || seq[0].Owner != "AircraftCo" {
		t.Fatalf("seq[0] = %+v", seq[0])
	}
	if seq[1].Term.CredType != "WebDesignerQuality" || seq[1].Owner != "AerospaceCo" {
		t.Fatalf("seq[1] = %+v", seq[1])
	}

	// the rendering mentions both alternatives
	s := tr.String()
	for _, frag := range []string{"VoMembership", "WebDesignerQuality", "AAACreditation", "BalanceSheet", "alt 0", "alt 1"} {
		if !strings.Contains(s, frag) {
			t.Errorf("tree rendering missing %q:\n%s", frag, s)
		}
	}
}

func TestMultiedgeTreatedAsWhole(t *testing.T) {
	tr := NewTree("R", "B")
	// one policy with two terms on its left side = multiedge
	kids, err := tr.Expand(RootID, [][]xtnl.Term{{{CredType: "X"}, {CredType: "Y"}}}, "A")
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root().Multiedge(0) {
		t.Fatal("two-term alternative should be a multiedge")
	}
	tr.Comply(kids[0].ID)
	if tr.Satisfiable(RootID) {
		t.Fatal("multiedge with one unanswered node must not be satisfiable")
	}
	tr.Deny(kids[1].ID)
	if tr.Satisfiable(RootID) {
		t.Fatal("multiedge with a denied node must fail as a whole")
	}
	if !tr.Dead(RootID) {
		t.Fatal("root should be dead: only alternative has a dead child")
	}
}

func TestSequenceDeduplicatesRepeatedTerms(t *testing.T) {
	tr := NewTree("R", "B")
	kids, _ := tr.Expand(RootID, [][]xtnl.Term{{{CredType: "X"}, {CredType: "Y"}}}, "A")
	// both X and Y are protected by the same requirement Z of B
	z1, _ := tr.Expand(kids[0].ID, [][]xtnl.Term{{{CredType: "Z"}}}, "B")
	z2, _ := tr.Expand(kids[1].ID, [][]xtnl.Term{{{CredType: "Z"}}}, "B")
	tr.Comply(z1[0].ID)
	tr.Comply(z2[0].ID)
	seq := tr.Sequence()
	count := 0
	for _, s := range seq {
		if s.Term.CredType == "Z" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("Z disclosed %d times in sequence, want 1: %+v", count, seq)
	}
	if len(seq) != 3 { // Z, X, Y
		t.Fatalf("sequence = %+v", seq)
	}
}

func TestCycleDetection(t *testing.T) {
	tr := NewTree("R", "B")
	kids, _ := tr.Expand(RootID, [][]xtnl.Term{{{CredType: "X"}}}, "A")
	x := kids[0]
	kids, _ = tr.Expand(x.ID, [][]xtnl.Term{{{CredType: "Y"}}}, "B")
	y := kids[0]
	// Y's policy re-requests X from A: cycle
	kids, _ = tr.Expand(y.ID, [][]xtnl.Term{{{CredType: "X"}}}, "A")
	x2 := kids[0]
	if !tr.HasAncestorTerm(x2.ID, "A", x2.Term) {
		t.Fatal("cycle not detected")
	}
	// same type but different conditions is NOT a cycle
	other := xtnl.Term{CredType: "X", Conditions: []string{"/credential/content/a='1'"}}
	if tr.HasAncestorTerm(x2.ID, "A", other) {
		t.Fatal("different conditions misdetected as cycle")
	}
	// different owner is not a cycle either
	if tr.HasAncestorTerm(x2.ID, "B", x2.Term) {
		t.Fatal("different owner misdetected as cycle")
	}
}

func TestExpandErrors(t *testing.T) {
	tr := NewTree("R", "B")
	if _, err := tr.Expand("nope", [][]xtnl.Term{{{CredType: "X"}}}, "A"); err == nil {
		t.Fatal("expand of unknown node accepted")
	}
	if _, err := tr.Expand(RootID, nil, "A"); err == nil {
		t.Fatal("expand with no alternatives accepted")
	}
	if _, err := tr.Expand(RootID, [][]xtnl.Term{{}}, "A"); err == nil {
		t.Fatal("empty alternative accepted")
	}
	tr.Expand(RootID, [][]xtnl.Term{{{CredType: "X"}}}, "A")
	if _, err := tr.Expand(RootID, [][]xtnl.Term{{{CredType: "Y"}}}, "A"); err == nil {
		t.Fatal("double expansion accepted")
	}
	if err := tr.Deny("nope"); err == nil {
		t.Fatal("deny of unknown node accepted")
	}
	if err := tr.Comply("nope"); err == nil {
		t.Fatal("comply of unknown node accepted")
	}
}

func TestCompleteAndOpenNodes(t *testing.T) {
	tr := NewTree("R", "B")
	if tr.Complete() {
		t.Fatal("fresh tree has an open root")
	}
	if got := tr.OpenNodes("B"); len(got) != 1 || got[0] != RootID {
		t.Fatalf("open nodes = %v", got)
	}
	kids, _ := tr.Expand(RootID, [][]xtnl.Term{{{CredType: "X"}}}, "A")
	if got := tr.OpenNodes("A"); len(got) != 1 || got[0] != kids[0].ID {
		t.Fatalf("open nodes for A = %v", got)
	}
	tr.Comply(kids[0].ID)
	if !tr.Complete() {
		t.Fatal("tree should be complete")
	}
}

func TestDeadPropagation(t *testing.T) {
	tr := NewTree("R", "B")
	kids, _ := tr.Expand(RootID, [][]xtnl.Term{
		{{CredType: "X"}},
		{{CredType: "Y"}},
	}, "A")
	tr.Deny(kids[0].ID)
	if tr.Dead(RootID) {
		t.Fatal("root not dead: alternative Y still open")
	}
	tr.Deny(kids[1].ID)
	if !tr.Dead(RootID) {
		t.Fatal("root should be dead after all alternatives denied")
	}
	if tr.Dead("unknown") != true {
		t.Fatal("unknown node should be dead")
	}
}

func TestSequenceNilWhenUnsatisfiable(t *testing.T) {
	tr := NewTree("R", "B")
	if tr.Sequence() != nil {
		t.Fatal("sequence of open tree should be nil")
	}
	tr.Deny(RootID)
	if tr.Sequence() != nil {
		t.Fatal("sequence of denied tree should be nil")
	}
}
