package negotiation

import (
	"errors"
	"testing"

	"trustvo/internal/xmldom"
	"trustvo/internal/xtnl"
)

// reserialize round-trips an endpoint through the XML text of its
// snapshot — exactly what a resume ticket or the server-side suspend
// store does — and returns the restored endpoint. Endpoints that cannot
// be snapshotted yet (no tree before the first policy message) are
// returned unchanged.
func reserialize(t *testing.T, ep *Endpoint) *Endpoint {
	t.Helper()
	dom, err := ep.SnapshotDOM()
	if err != nil {
		if ep.tree == nil {
			return ep
		}
		t.Fatal(err)
	}
	doc, err := xmldom.ParseString(dom.XML())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEndpoint(ep.party, doc)
	if err != nil {
		t.Fatal(err)
	}
	return restored
}

// countMessages runs the §5.1 negotiation to completion and returns how
// many messages were delivered.
func countMessages(t *testing.T) int {
	t.Helper()
	f := newFixture(t)
	rq := NewRequester(f.aerospace, "VoMembership")
	ct := NewController(f.aircraft)
	msg, err := rq.Start()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	to := ct
	other := rq
	for msg != nil {
		total++
		if msg, err = to.Handle(msg); err != nil {
			t.Fatal(err)
		}
		to, other = other, to
	}
	if !rq.Outcome().Succeeded {
		t.Fatalf("baseline negotiation failed: %s", rq.Outcome().Reason)
	}
	return total
}

// TestSnapshotRoundTripMidNegotiation interrupts the negotiation at
// every message boundary — covering both the policy-evaluation and the
// credential-exchange phase — round-trips both live endpoints through
// their XML snapshots, and completes the run on the restored endpoints.
func TestSnapshotRoundTripMidNegotiation(t *testing.T) {
	total := countMessages(t)
	if total < 4 {
		t.Fatalf("scenario too short to interrupt meaningfully: %d messages", total)
	}
	for cut := 1; cut < total; cut++ {
		f := newFixture(t)
		eps := [2]*Endpoint{NewRequester(f.aerospace, "VoMembership"), NewController(f.aircraft)}
		msg, err := eps[0].Start()
		if err != nil {
			t.Fatal(err)
		}
		sender := 0
		for n := 0; msg != nil; n++ {
			if n == cut {
				for i := range eps {
					if !eps[i].Done() {
						eps[i] = reserialize(t, eps[i])
					}
				}
			}
			recv := 1 - sender
			if msg, err = eps[recv].Handle(msg); err != nil {
				t.Fatalf("cut=%d: %v", cut, err)
			}
			sender = recv
		}
		for i, role := range []string{"requester", "controller"} {
			if !eps[i].Done() {
				t.Fatalf("cut=%d: %s not done after restore", cut, role)
			}
			if out := eps[i].Outcome(); !out.Succeeded {
				t.Fatalf("cut=%d: %s failed after restore: %s", cut, role, out.Reason)
			}
		}
		// the restored requester still collected the disclosures
		if out := eps[0].Outcome(); len(out.Sent) == 0 {
			t.Fatalf("cut=%d: restored requester lost its disclosure record", cut)
		}
	}
}

// TestSnapshotRejectsFinishedEndpoint pins the ErrSnapshotDone contract:
// a completed negotiation has nothing to resume.
func TestSnapshotRejectsFinishedEndpoint(t *testing.T) {
	f := newFixture(t)
	rq := NewRequester(f.aerospace, "VoMembership")
	ct := NewController(f.aircraft)
	msg, err := rq.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := Drive(rq, ct, msg); err != nil {
		t.Fatal(err)
	}
	if _, err := rq.SnapshotDOM(); !errors.Is(err, ErrSnapshotDone) {
		t.Fatalf("snapshot of finished endpoint: %v", err)
	}
}

// TestRestoreRejectsMissingCredential verifies the failure mode the
// suspend store must tolerate: a snapshot referencing a credential the
// restoring party no longer holds is refused rather than silently
// continued.
func TestRestoreRejectsMissingCredential(t *testing.T) {
	total := countMessages(t)
	f := newFixture(t)
	prof := xtnl.NewProfile(f.aerospace.Name)
	for _, c := range f.aerospace.Profile.All() {
		if c.ID != f.wdqCred.ID {
			prof.Add(c)
		}
	}
	bare := &Party{
		Name:     f.aerospace.Name,
		Profile:  prof,
		Policies: f.aerospace.Policies,
		Trust:    f.aerospace.Trust,
	}
	// Interrupt at every boundary; once the requester has committed to
	// disclosing its quality credential, restoring without it must fail.
	rejected := false
	for cut := 1; cut < total; cut++ {
		eps := [2]*Endpoint{NewRequester(f.aerospace, "VoMembership"), NewController(f.aircraft)}
		msg, err := eps[0].Start()
		if err != nil {
			t.Fatal(err)
		}
		sender := 0
		for n := 0; n < cut && msg != nil; n++ {
			recv := 1 - sender
			if msg, err = eps[recv].Handle(msg); err != nil {
				t.Fatal(err)
			}
			sender = recv
		}
		if eps[0].Done() || eps[0].tree == nil {
			continue
		}
		dom, err := eps[0].SnapshotDOM()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RestoreEndpoint(bare, dom); err != nil {
			rejected = true
		}
	}
	if !rejected {
		t.Fatal("no interruption point rejected the restore despite the missing credential")
	}
}
