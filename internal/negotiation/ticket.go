package negotiation

import (
	"crypto/ed25519"
	"encoding/base64"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"trustvo/internal/pki"
	"trustvo/internal/xmldom"
)

// Trust tickets.
//
// The Trust-X system the paper integrates supports negotiations based on
// trust tickets: after a successful negotiation, the resource's
// controller can issue the requester a ticket; presenting it in a later
// negotiation for the same resource skips the policy-evaluation and
// credential-exchange phases entirely. This matters for the VO
// operational phase, where the same members re-negotiate repeatedly
// ("executed repeatedly until the target result is achieved", §3).
//
// A ticket is a signed statement ⟨issuer, peer, resource, expiry⟩ under
// the issuer's Ed25519 key. The issuer verifies its own signature on
// presentation, so no extra trust setup is needed.

// Ticket is a trust ticket for one (peer, resource) pair.
type Ticket struct {
	Issuer    string
	Peer      string
	Resource  string
	Expires   time.Time
	Signature []byte
}

func (t *Ticket) signedBytes() []byte {
	return []byte("trustvo-ticket|" + t.Issuer + "|" + t.Peer + "|" + t.Resource + "|" +
		t.Expires.UTC().Format(time.RFC3339))
}

// IssueTicket signs a ticket for peer over resource, valid for ttl.
func IssueTicket(keys *pki.KeyPair, issuer, peer, resource string, ttl time.Duration) *Ticket {
	t := &Ticket{
		Issuer:   issuer,
		Peer:     peer,
		Resource: resource,
		Expires:  time.Now().Add(ttl).UTC().Truncate(time.Second),
	}
	t.Signature = keys.Sign(t.signedBytes())
	return t
}

// ErrBadTicket reports an invalid or expired trust ticket.
var ErrBadTicket = errors.New("negotiation: invalid trust ticket")

// Verify checks the ticket against the issuer's public key, the
// expected peer and resource, and the clock.
func (t *Ticket) Verify(pub ed25519.PublicKey, peer, resource string, now time.Time) error {
	if t.Peer != peer || t.Resource != resource {
		return fmt.Errorf("%w: bound to %s/%s", ErrBadTicket, t.Peer, t.Resource)
	}
	if now.After(t.Expires) {
		return fmt.Errorf("%w: expired %s", ErrBadTicket, t.Expires.Format(time.RFC3339))
	}
	if !ed25519.Verify(pub, t.signedBytes(), t.Signature) {
		return fmt.Errorf("%w: signature", ErrBadTicket)
	}
	return nil
}

// DOM serializes the ticket for the wire.
func (t *Ticket) DOM() *xmldom.Node {
	n := xmldom.NewElement("ticket").
		SetAttr("issuer", t.Issuer).
		SetAttr("peer", t.Peer).
		SetAttr("resource", t.Resource).
		SetAttr("expires", t.Expires.UTC().Format(time.RFC3339))
	n.AppendChild(xmldom.NewText(base64.StdEncoding.EncodeToString(t.Signature)))
	return n
}

func ticketFromDOM(n *xmldom.Node) (*Ticket, error) {
	exp, err := time.Parse(time.RFC3339, n.AttrOr("expires", ""))
	if err != nil {
		return nil, fmt.Errorf("%w: bad expiry: %w", ErrBadMessage, err)
	}
	sig, err := base64.StdEncoding.DecodeString(n.Text())
	if err != nil {
		return nil, fmt.Errorf("%w: bad ticket signature encoding: %w", ErrBadMessage, err)
	}
	return &Ticket{
		Issuer:    n.AttrOr("issuer", ""),
		Peer:      n.AttrOr("peer", ""),
		Resource:  n.AttrOr("resource", ""),
		Expires:   exp,
		Signature: sig,
	}, nil
}

// TicketCache stores the trust tickets a party has received, keyed by
// (issuer, resource). Safe for concurrent use.
type TicketCache struct {
	mu      sync.RWMutex
	tickets map[string]*Ticket
}

// NewTicketCache returns an empty cache.
func NewTicketCache() *TicketCache {
	return &TicketCache{tickets: make(map[string]*Ticket)}
}

func ticketKey(issuer, resource string) string { return issuer + "\x00" + resource }

// Put stores a ticket.
func (c *TicketCache) Put(t *Ticket) {
	if c == nil || t == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tickets[ticketKey(t.Issuer, t.Resource)] = t
}

// Get returns the cached ticket for (issuer, resource), nil if absent
// or expired (expired entries are dropped).
func (c *TicketCache) Get(issuer, resource string, now time.Time) *Ticket {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tickets[ticketKey(issuer, resource)]
	if t == nil {
		return nil
	}
	if now.After(t.Expires) {
		delete(c.tickets, ticketKey(issuer, resource))
		return nil
	}
	return t
}

// GetByResource returns any unexpired cached ticket for the resource
// (a requester usually does not know the controller's name before the
// first reply; the controller validates the binding anyway).
func (c *TicketCache) GetByResource(resource string, now time.Time) *Ticket {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, t := range c.tickets {
		if t.Resource != resource {
			continue
		}
		if now.After(t.Expires) {
			delete(c.tickets, k)
			continue
		}
		return t
	}
	return nil
}

// Len returns the number of cached tickets.
func (c *TicketCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.tickets)
}

// Resume tickets.
//
// Where a trust ticket skips a negotiation that already succeeded, a
// resume ticket continues one that was interrupted: when the transport
// fails or a deadline expires mid-negotiation, the local endpoint state
// is captured (SnapshotDOM) together with the unacknowledged message and
// its envelope sequence number. Re-presenting the ticket restores the
// endpoint and re-sends that message under the same sequence number, so
// the counterpart's reply cache makes the hand-off exactly-once whether
// or not the original delivery got through. The ticket is signed by its
// holder's own key — it never crosses the wire; the signature protects a
// ticket persisted to disk from tampering.

// ResumeTicket captures an interrupted negotiation for later resumption.
type ResumeTicket struct {
	// NegID is the negotiation id assigned by the remote service.
	NegID string
	// Resource is the negotiated resource.
	Resource string
	// Peer is the counterpart's name ("" when the interruption happened
	// before the first reply).
	Peer string
	// Seq is the envelope sequence number of LastSent; resumption re-sends
	// under the same number so a duplicate is detected remotely.
	Seq int64
	// Expires bounds how long the resumption is honored locally.
	Expires time.Time
	// LastSent is the message whose delivery was never acknowledged.
	LastSent *Message
	// State is the endpoint snapshot (SnapshotDOM output).
	State *xmldom.Node
	// Signature is the holder's Ed25519 signature (empty when unkeyed).
	Signature []byte
}

func (t *ResumeTicket) signedBytes() []byte {
	state, lastSent := "", ""
	if t.State != nil {
		state = t.State.XML()
	}
	if t.LastSent != nil {
		lastSent = t.LastSent.XML()
	}
	return []byte("trustvo-resume|" + t.NegID + "|" + t.Resource + "|" + t.Peer + "|" +
		fmt.Sprintf("%d", t.Seq) + "|" + t.Expires.UTC().Format(time.RFC3339) + "|" +
		state + "|" + lastSent)
}

// NewResumeTicket snapshots an in-flight endpoint into a resume ticket.
// lastSent/seq identify the message whose delivery is in doubt. The
// ticket is signed when the party holds keys.
func NewResumeTicket(ep *Endpoint, negID string, seq int64, lastSent *Message, ttl time.Duration) (*ResumeTicket, error) {
	state, err := ep.SnapshotDOM()
	if err != nil {
		return nil, err
	}
	if ttl <= 0 {
		ttl = 5 * time.Minute
	}
	t := &ResumeTicket{
		NegID:    negID,
		Resource: ep.resource,
		Peer:     ep.peer,
		Seq:      seq,
		Expires:  ep.party.now().Add(ttl).UTC().Truncate(time.Second),
		LastSent: lastSent,
		State:    state,
	}
	if ep.party.Keys != nil {
		t.Signature = ep.party.Keys.Sign(t.signedBytes())
	}
	return t, nil
}

// ErrBadResumeTicket reports an invalid or expired resume ticket.
var ErrBadResumeTicket = errors.New("negotiation: invalid resume ticket")

// Verify checks expiry, and — when the holder has keys and the ticket a
// signature — integrity under the holder's public key.
func (t *ResumeTicket) Verify(pub ed25519.PublicKey, now time.Time) error {
	if t.NegID == "" || t.State == nil || t.LastSent == nil {
		return fmt.Errorf("%w: incomplete", ErrBadResumeTicket)
	}
	if now.After(t.Expires) {
		return fmt.Errorf("%w: expired %s", ErrBadResumeTicket, t.Expires.Format(time.RFC3339))
	}
	if pub != nil && len(t.Signature) > 0 &&
		!ed25519.Verify(pub, t.signedBytes(), t.Signature) {
		return fmt.Errorf("%w: signature", ErrBadResumeTicket)
	}
	return nil
}

// DOM serializes the resume ticket (for persistence, not the wire).
func (t *ResumeTicket) DOM() *xmldom.Node {
	n := xmldom.NewElement("resumeTicket").
		SetAttr("negotiation", t.NegID).
		SetAttr("resource", t.Resource).
		SetAttr("peer", t.Peer).
		SetAttr("seq", fmt.Sprintf("%d", t.Seq)).
		SetAttr("expires", t.Expires.UTC().Format(time.RFC3339))
	if t.LastSent != nil {
		n.AppendChild(t.LastSent.DOM())
	}
	if t.State != nil {
		n.AppendChild(t.State.Clone())
	}
	if len(t.Signature) > 0 {
		sig := xmldom.NewElement("signature")
		sig.AppendChild(xmldom.NewText(base64.StdEncoding.EncodeToString(t.Signature)))
		n.AppendChild(sig)
	}
	return n
}

// ResumeTicketFromDOM parses a persisted resume ticket.
func ResumeTicketFromDOM(n *xmldom.Node) (*ResumeTicket, error) {
	if n == nil || n.Name != "resumeTicket" {
		return nil, fmt.Errorf("%w: expected <resumeTicket>", ErrBadResumeTicket)
	}
	exp, err := time.Parse(time.RFC3339, n.AttrOr("expires", ""))
	if err != nil {
		return nil, fmt.Errorf("%w: bad expiry: %w", ErrBadResumeTicket, err)
	}
	seq, err := strconv.ParseInt(n.AttrOr("seq", "0"), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: bad seq: %w", ErrBadResumeTicket, err)
	}
	t := &ResumeTicket{
		NegID:    n.AttrOr("negotiation", ""),
		Resource: n.AttrOr("resource", ""),
		Peer:     n.AttrOr("peer", ""),
		Seq:      seq,
		Expires:  exp,
	}
	if tm := n.Child("tnMessage"); tm != nil {
		if t.LastSent, err = MessageFromDOM(tm); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadResumeTicket, err)
		}
	}
	if st := n.Child("negotiationState"); st != nil {
		t.State = st.Clone()
	}
	if sig := n.Child("signature"); sig != nil {
		if t.Signature, err = base64.StdEncoding.DecodeString(sig.Text()); err != nil {
			return nil, fmt.Errorf("%w: bad signature encoding: %w", ErrBadResumeTicket, err)
		}
	}
	return t, nil
}
