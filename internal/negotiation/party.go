package negotiation

import (
	"errors"
	"fmt"
	"time"

	"trustvo/internal/ontology"
	"trustvo/internal/pki"
	"trustvo/internal/telemetry"
	"trustvo/internal/xtnl"
)

// Party is the negotiation-relevant identity of one participant: its
// X-Profile, disclosure policies, trust anchors, optional semantic layer
// and strategy. A Party is shared by all of that participant's
// negotiations; per-negotiation state lives in Endpoint.
type Party struct {
	Name string
	// Profile holds the party's credentials (X-Profile).
	Profile *xtnl.Profile
	// Policies holds the party's disclosure policies.
	Policies *xtnl.PolicySet
	// Trust verifies counterpart credentials.
	Trust *pki.TrustStore
	// Strategy selects the negotiation behaviour (default Standard).
	Strategy Strategy
	// Mapper, when set, enables the §4.3 semantic layer: concept-level
	// terms in received policies are resolved through the local ontology
	// (Algorithm 1), and — with AbstractLevels > 0 — outgoing policies
	// are abstracted to concepts before being sent.
	Mapper *ontology.Mapper
	// AbstractLevels abstracts outgoing policies to concepts, climbing
	// that many is_a levels (0 disables abstraction).
	AbstractLevels int
	// Keys is the party's holder key pair, used to prove credential
	// ownership when the counterpart demands it.
	Keys *pki.KeyPair
	// Selective maps committed-credential IDs to their selective
	// credentials, enabling partial hiding under suspicious strategies.
	Selective map[string]*pki.SelectiveCredential
	// X509 maps credential IDs to their X.509 attribute-certificate DER
	// encoding (§6.3 dual-format support). When PreferX509 is set,
	// credentials with an entry here are disclosed in X.509 form.
	X509 map[string][]byte
	// PreferX509 discloses credentials as X.509 attribute certificates
	// when an encoding is available.
	PreferX509 bool
	// Chains holds AuthorityDelegation credentials this party attaches
	// to disclosures whose issuer may be unknown to counterparts.
	Chains []*xtnl.Credential
	// Grant supplies the MsgSuccess payload when this party controls the
	// negotiated resource (e.g. a serialized membership certificate).
	// nil means an empty grant.
	Grant func(resource, peer string) ([]byte, error)
	// Clock supplies the verification time (defaults to time.Now).
	Clock func() time.Time
	// Trace, when set, observes every protocol message this party's
	// endpoints send ("send") and receive ("recv") — the monitoring
	// hook behind the paper's "GUI … enabling [users] to monitor the
	// negotiation process".
	Trace func(direction string, m *Message)
	// Metrics, when set, receives per-negotiation telemetry: outcome and
	// disclosure counters, verification failures, and phase-latency
	// histograms keyed by role (see README "Observability" for series
	// names). nil disables collection at the cost of one branch per
	// recording site.
	Metrics *telemetry.Registry
	// Recorder, when set, enables span tracing on this party's endpoints
	// and is invoked with the finished negotiation's trace: one root span
	// with children for each protocol phase and message handled. The
	// trace is also readable mid-flight via Endpoint.Trace.
	Recorder func(*telemetry.Trace)
	// TicketTTL, when positive, makes this party (as controller) attach
	// a trust ticket to every successful grant; a requester presenting
	// that ticket later skips the negotiation phases entirely (the
	// Trust-X trust-ticket mechanism). Requires Keys.
	TicketTTL time.Duration
	// Tickets caches received trust tickets; requester endpoints
	// present a matching cached ticket automatically.
	Tickets *TicketCache
	// MaxRounds bounds the number of protocol messages an endpoint of
	// this party will process (0 = default 512).
	MaxRounds int
	// MaxTreeNodes bounds the negotiation tree size (0 = default 4096):
	// a counterpart sending combinatorially exploding policies (a
	// "policy bomb") fails the negotiation instead of exhausting memory.
	MaxTreeNodes int
}

func (p *Party) now() time.Time {
	if p.Clock != nil {
		return p.Clock()
	}
	return time.Now()
}

func (p *Party) maxRounds() int {
	if p.MaxRounds > 0 {
		return p.MaxRounds
	}
	return 512
}

func (p *Party) maxTreeNodes() int {
	if p.MaxTreeNodes > 0 {
		return p.MaxTreeNodes
	}
	return 4096
}

// candidate is a disclosable credential matching a term: either a plain
// credential or a selective one.
type candidate struct {
	cred      *xtnl.Credential         // the plain credential (or clear view)
	selective *pki.SelectiveCredential // non-nil when partial hiding possible
}

func (c candidate) sensitivity() xtnl.Sensitivity {
	if c.selective != nil {
		return c.selective.Committed.Sensitivity
	}
	return c.cred.Sensitivity
}

// errNoCandidate reports that the party holds nothing satisfying a term.
var errNoCandidate = errors.New("negotiation: no satisfying credential")

// resolveTerm finds the party's candidates for a term, least sensitive
// first. Concept-level terms go through the ontology mapper; plain terms
// through the profile; selective credentials are matched on their clear
// views.
func (p *Party) resolveTerm(term xtnl.Term) ([]candidate, error) {
	var out []candidate

	// Selective credentials: match the term against the clear view.
	for _, sc := range p.Selective {
		view := sc.View()
		checkTerm := term
		if concept, ok := ontology.AsConceptRef(term.CredType); ok {
			if p.Mapper == nil {
				continue
			}
			local := ""
			impls := p.Mapper.Ontology.ImplementationsOf(concept)
			for _, im := range impls {
				if im.CredType == view.Type {
					local = concept
					break
				}
			}
			// Also try similarity matching for foreign concept names.
			if local == "" {
				if best := p.Mapper.Ontology.BestMatchName(concept); best.Concept != "" {
					for _, im := range p.Mapper.Ontology.ImplementationsOf(best.Concept) {
						if im.CredType == view.Type {
							local = best.Concept
							break
						}
					}
				}
			}
			if local == "" {
				continue
			}
			checkTerm = xtnl.Term{
				Conditions: p.Mapper.Ontology.ToImplConditions(local, view.Type, term.Conditions),
			}
		}
		if checkTerm.SatisfiedBy(view) {
			out = append(out, candidate{cred: view, selective: sc})
		}
	}

	if concept, ok := ontology.AsConceptRef(term.CredType); ok {
		if p.Mapper == nil {
			return nil, fmt.Errorf("%w: concept term %q but party %s has no ontology",
				errNoCandidate, concept, p.Name)
		}
		creds, err := p.Mapper.ResolveTerm(term)
		if err != nil {
			if len(out) > 0 {
				return sortCandidates(out), nil
			}
			return nil, fmt.Errorf("%w: %w", errNoCandidate, err)
		}
		for _, c := range creds {
			out = append(out, candidate{cred: c})
		}
		return sortCandidates(out), nil
	}

	for _, c := range p.Profile.Satisfying(term) {
		out = append(out, candidate{cred: c})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: type %q", errNoCandidate, term.CredType)
	}
	return sortCandidates(out), nil
}

// sortCandidates orders candidates by ascending sensitivity (stable),
// implementing the CredCluster preference of Algorithm 1.
func sortCandidates(cands []candidate) []candidate {
	// insertion sort: candidate lists are tiny
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].sensitivity() < cands[j-1].sensitivity(); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	return cands
}

// protectingPolicies returns the party's disclosure policies for a
// credential type, abstracted to concepts when configured. A nil result
// means the credential is unprotected (freely disclosable); policies
// containing a delivery rule likewise mean free disclosure.
func (p *Party) protectingPolicies(credType string) (alts []*xtnl.Policy, free bool) {
	pols := p.Policies.For(credType)
	if len(pols) == 0 {
		return nil, true
	}
	for _, pol := range pols {
		if pol.Deliver {
			return nil, true
		}
	}
	if p.AbstractLevels > 0 && p.Mapper != nil {
		abstracted := make([]*xtnl.Policy, len(pols))
		for i, pol := range pols {
			abstracted[i] = ontology.Abstract(pol, p.Mapper.Ontology, p.AbstractLevels)
		}
		return abstracted, false
	}
	return pols, false
}
