package negotiation

import (
	"fmt"
	"sort"
	"strings"

	"trustvo/internal/xtnl"
)

// The negotiation tree (§4.2): "a labeled tree rooted at the resource
// that initially started the negotiation. Each node corresponds to a
// term, whereas edges correspond to policy rules. A negotiation tree is
// characterized by two different kinds of edges: simple edges and
// multiedges. A simple edge denotes a policy having only one term on the
// left side component of the rule. By contrast, a multiedge links
// several simple edges to represent policy rules having more than one
// term... Nodes belonging to a multiedge are thus considered as a whole."
//
// Both endpoints maintain mirror copies: node IDs are derived
// deterministically from the message stream (child of node n via
// alternative a, term t has ID "n.a.t"), so the two copies stay
// structurally identical without a shared coordinator.

// NodeState is the lifecycle of one tree node.
type NodeState int

const (
	// StateOpen means the node's owner has not answered it yet.
	StateOpen NodeState = iota
	// StateComply means the owner will disclose a satisfying credential
	// freely (unprotected, or protected by a delivery rule).
	StateComply
	// StateExpanded means the owner protected the node with one or more
	// policies; the node's alternatives hold the resulting children.
	StateExpanded
	// StateDenied means the owner cannot or will not satisfy the term.
	StateDenied
)

func (s NodeState) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateComply:
		return "comply"
	case StateExpanded:
		return "expanded"
	case StateDenied:
		return "denied"
	default:
		return fmt.Sprintf("NodeState(%d)", int(s))
	}
}

// RootID is the node ID of the negotiation's target resource.
const RootID = "r"

// Node is one term in the negotiation tree.
type Node struct {
	ID    string
	Term  xtnl.Term
	Owner string // name of the party that must satisfy the term
	State NodeState
	// Alts holds, per alternative policy (an edge), the IDs of the
	// children the policy requires. len(Alts[i]) > 1 is a multiedge.
	Alts   [][]string
	Parent string // "" for the root
}

// Multiedge reports whether alternative i is a multiedge.
func (n *Node) Multiedge(i int) bool { return i < len(n.Alts) && len(n.Alts[i]) > 1 }

// Tree is one party's copy of the negotiation tree.
type Tree struct {
	nodes map[string]*Node
}

// NewTree creates a tree rooted at the resource term owned by controller.
func NewTree(resource, controller string) *Tree {
	t := &Tree{nodes: make(map[string]*Node)}
	t.nodes[RootID] = &Node{
		ID:    RootID,
		Term:  xtnl.Term{CredType: resource},
		Owner: controller,
		State: StateOpen,
	}
	return t
}

// Node returns the node with the given ID, or nil.
func (t *Tree) Node(id string) *Node { return t.nodes[id] }

// Root returns the root node.
func (t *Tree) Root() *Node { return t.nodes[RootID] }

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.nodes) }

// termKey is the identity of a requirement for cycle detection and
// sequence deduplication: owner plus normalized term.
func termKey(owner string, term xtnl.Term) string {
	conds := append([]string(nil), term.Conditions...)
	sort.Strings(conds)
	return owner + "\x00" + term.CredType + "\x00" + strings.Join(conds, "\x01")
}

// HasAncestorTerm reports whether any proper ancestor of node id carries
// the same owner and term — the mutual-requirement detector: a policy
// chain that re-requests a requirement already committed on the path is
// answered COMPLY (the disclosure is shared with the ancestor; the trust
// sequence dedupes it), resolving interlocks like the paper's §5.1
// "PrivacyRegulator ← PrivacyRegulator" without unbounded expansion.
func (t *Tree) HasAncestorTerm(id string, owner string, term xtnl.Term) bool {
	key := termKey(owner, term)
	n := t.nodes[id]
	if n == nil {
		return false
	}
	for cur := n.Parent; cur != ""; {
		p := t.nodes[cur]
		if p == nil {
			return false
		}
		if termKey(p.Owner, p.Term) == key {
			return true
		}
		cur = p.Parent
	}
	return false
}

// Deny marks the node denied.
func (t *Tree) Deny(id string) error {
	n := t.nodes[id]
	if n == nil {
		return fmt.Errorf("negotiation: deny unknown node %s", id)
	}
	n.State = StateDenied
	return nil
}

// Comply marks the node freely satisfiable.
func (t *Tree) Comply(id string) error {
	n := t.nodes[id]
	if n == nil {
		return fmt.Errorf("negotiation: comply unknown node %s", id)
	}
	n.State = StateComply
	return nil
}

// Expand applies policy alternatives to the node: alternative i consists
// of terms owned by counterOwner (the other party). Children get
// deterministic IDs "<id>.<alt>.<term>" and state Open. It returns the
// created children in creation order.
func (t *Tree) Expand(id string, alternatives [][]xtnl.Term, counterOwner string) ([]*Node, error) {
	n := t.nodes[id]
	if n == nil {
		return nil, fmt.Errorf("negotiation: expand unknown node %s", id)
	}
	if n.State != StateOpen {
		return nil, fmt.Errorf("negotiation: expand node %s in state %s", id, n.State)
	}
	if len(alternatives) == 0 {
		return nil, fmt.Errorf("negotiation: expand node %s with no alternatives", id)
	}
	var created []*Node
	for ai, terms := range alternatives {
		if len(terms) == 0 {
			return nil, fmt.Errorf("negotiation: node %s alternative %d has no terms", id, ai)
		}
		var ids []string
		for ti, term := range terms {
			cid := fmt.Sprintf("%s.%d.%d", id, ai, ti)
			child := &Node{
				ID:     cid,
				Term:   term,
				Owner:  counterOwner,
				State:  StateOpen,
				Parent: id,
			}
			t.nodes[cid] = child
			ids = append(ids, cid)
			created = append(created, child)
		}
		n.Alts = append(n.Alts, ids)
	}
	n.State = StateExpanded
	return created, nil
}

// OpenNodes returns the IDs of unanswered nodes owned by owner, in
// deterministic (sorted) order.
func (t *Tree) OpenNodes(owner string) []string {
	var out []string
	for id, n := range t.nodes {
		if n.State == StateOpen && n.Owner == owner {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Complete reports whether every node has been answered.
func (t *Tree) Complete() bool {
	for _, n := range t.nodes {
		if n.State == StateOpen {
			return false
		}
	}
	return true
}

// Satisfiable reports whether the subtree rooted at id can succeed:
// a Comply leaf, or an Expanded node with at least one alternative whose
// children are all satisfiable. Open and Denied nodes are unsatisfiable.
func (t *Tree) Satisfiable(id string) bool {
	n := t.nodes[id]
	if n == nil {
		return false
	}
	switch n.State {
	case StateComply:
		return true
	case StateExpanded:
		for ai := range n.Alts {
			if t.altSatisfiable(n, ai) {
				return true
			}
		}
	}
	return false
}

// ChosenAlt returns the index of the first satisfiable alternative of
// an expanded node — the view choice Sequence commits to — or -1 when
// the node is not expanded or not satisfiable.
func (t *Tree) ChosenAlt(id string) int {
	n := t.nodes[id]
	if n == nil || n.State != StateExpanded {
		return -1
	}
	for ai := range n.Alts {
		if t.altSatisfiable(n, ai) {
			return ai
		}
	}
	return -1
}

func (t *Tree) altSatisfiable(n *Node, ai int) bool {
	for _, cid := range n.Alts[ai] {
		if !t.Satisfiable(cid) {
			return false
		}
	}
	return true
}

// SequenceEntry is one step of a trust sequence: the node whose
// credential its owner must disclose at that position.
type SequenceEntry struct {
	NodeID string
	Owner  string
	Term   xtnl.Term
}

// Sequence computes the trust sequence of the first satisfiable view:
// for every node, the first satisfiable alternative is chosen (the view),
// and disclosures are ordered child-before-parent (post-order), so each
// credential's preconditions are already satisfied when it is sent. The
// root itself — the negotiated resource — is excluded: its release is
// the success of the negotiation. Duplicate requirements (same owner and
// term) appear once, at their earliest position.
//
// Both parties compute this from their mirror trees and obtain the same
// sequence; it returns nil when the tree is not satisfiable.
func (t *Tree) Sequence() []SequenceEntry {
	if !t.Satisfiable(RootID) {
		return nil
	}
	var out []SequenceEntry
	seen := make(map[string]bool)
	var visit func(id string)
	visit = func(id string) {
		n := t.nodes[id]
		if n.State == StateExpanded {
			for ai := range n.Alts {
				if !t.altSatisfiable(n, ai) {
					continue
				}
				for _, cid := range n.Alts[ai] {
					visit(cid)
				}
				break
			}
		}
		if id == RootID {
			return
		}
		key := termKey(n.Owner, n.Term)
		if !seen[key] {
			seen[key] = true
			out = append(out, SequenceEntry{NodeID: id, Owner: n.Owner, Term: n.Term})
		}
	}
	visit(RootID)
	return out
}

// String renders the tree for debugging and for the Fig. 2 example test:
// nested nodes with owner, state and multiedge markers.
func (t *Tree) String() string {
	var b strings.Builder
	var render func(id string, depth int)
	render = func(id string, depth int) {
		n := t.nodes[id]
		fmt.Fprintf(&b, "%s%s [%s, %s] %s\n", strings.Repeat("  ", depth), n.Term.String(), n.Owner, n.State, n.ID)
		for ai, alt := range n.Alts {
			marker := "edge"
			if len(alt) > 1 {
				marker = "multiedge"
			}
			fmt.Fprintf(&b, "%s|- alt %d (%s)\n", strings.Repeat("  ", depth+1), ai, marker)
			for _, cid := range alt {
				render(cid, depth+2)
			}
		}
	}
	render(RootID, 0)
	return b.String()
}
