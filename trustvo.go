// Package trustvo is a from-scratch Go reproduction of "Trust
// establishment in the formation of Virtual Organizations" (Squicciarini,
// Paci, Bertino): the Trust-X trust negotiation engine — X-TNL
// credentials and disclosure policies, negotiation trees, four
// confidentiality-graded strategies, an ontology-backed semantic layer —
// integrated into every phase of the Virtual Organization lifecycle, and
// exposed as the paper's TN web service and VO Management toolkit.
//
// This package is the public facade: it re-exports the library's main
// types so applications depend on a single import path. The
// implementation lives under internal/ (see DESIGN.md for the map):
//
//   - X-TNL language:      internal/xtnl (+ internal/xmldom, internal/xpath)
//   - PKI substrate:       internal/pki
//   - Semantic layer:      internal/ontology
//   - Negotiation engine:  internal/negotiation
//   - Document store:      internal/store
//   - VO substrate:        internal/vo, internal/vo/registry
//   - Extended lifecycle:  internal/core
//   - Web services:        internal/wsrpc
//
// # Quickstart
//
// Two parties establish trust over a protected resource:
//
//	ca := trustvo.MustNewAuthority("CertCA")
//	alice := &trustvo.Party{
//	    Name:     "alice",
//	    Profile:  trustvo.NewProfile("alice"),
//	    Policies: trustvo.MustPolicySet(),
//	    Trust:    trustvo.NewTrustStore(ca),
//	}
//	alice.Profile.Add(ca.MustIssue(trustvo.IssueRequest{Type: "EmployeeBadge", Holder: "alice"}))
//	bob := &trustvo.Party{
//	    Name:     "bob",
//	    Profile:  trustvo.NewProfile("bob"),
//	    Policies: trustvo.MustPolicySet(trustvo.MustParsePolicies("Report <- EmployeeBadge")...),
//	    Trust:    trustvo.NewTrustStore(ca),
//	}
//	out, _, err := trustvo.Negotiate(alice, bob, "Report")
//
// See examples/ for the full Aircraft Optimization VO scenario of the
// paper's §3, a semantic (cross-naming) negotiation, and the Fig. 5
// web-service deployment.
package trustvo

import (
	"trustvo/internal/core"
	"trustvo/internal/faultinject"
	"trustvo/internal/negotiation"
	"trustvo/internal/ontology"
	"trustvo/internal/pki"
	"trustvo/internal/reputation"
	"trustvo/internal/store"
	"trustvo/internal/telemetry"
	"trustvo/internal/vo"
	"trustvo/internal/vo/registry"
	"trustvo/internal/wsrpc"
	"trustvo/internal/xtnl"
)

// ---- X-TNL language ----

type (
	// Credential is an X-TNL attribute credential (Fig. 6 layout).
	Credential = xtnl.Credential
	// Attribute is one named property of a credential.
	Attribute = xtnl.Attribute
	// Profile is a party's X-Profile (its credential collection).
	Profile = xtnl.Profile
	// Policy is a disclosure policy (Fig. 7 layout / DSL form).
	Policy = xtnl.Policy
	// Term is one requirement inside a disclosure policy.
	Term = xtnl.Term
	// PolicySet indexes a party's disclosure policies by resource.
	PolicySet = xtnl.PolicySet
	// Sensitivity labels a credential's privacy level.
	Sensitivity = xtnl.Sensitivity
)

// Sensitivity levels (Algorithm 1's CredCluster labels).
const (
	SensitivityLow    = xtnl.SensitivityLow
	SensitivityMedium = xtnl.SensitivityMedium
	SensitivityHigh   = xtnl.SensitivityHigh
)

// Language constructors and parsers.
var (
	NewProfile        = xtnl.NewProfile
	ParseCredential   = xtnl.ParseCredential
	ParsePolicy       = xtnl.ParsePolicy
	ParsePolicies     = xtnl.ParsePolicies
	MustParsePolicies = xtnl.MustParsePolicies
	ParsePolicyRule   = xtnl.ParsePolicyRule
	NewPolicySet      = xtnl.NewPolicySet
	MustPolicySet     = xtnl.MustPolicySet
	ParseProfile      = xtnl.ParseProfile
)

// ---- PKI ----

type (
	// Authority is a credential authority issuing signed credentials.
	Authority = pki.Authority
	// IssueRequest describes a credential to mint.
	IssueRequest = pki.IssueRequest
	// TrustStore verifies credentials against trusted issuer keys.
	TrustStore = pki.TrustStore
	// KeyPair is an Ed25519 key pair (holder keys, ownership proofs).
	KeyPair = pki.KeyPair
	// SelectiveCredential supports partial attribute hiding (§6.3).
	SelectiveCredential = pki.SelectiveCredential
	// MembershipToken is a decoded X.509 VO membership certificate.
	MembershipToken = pki.MembershipToken
	// VOAuthority mints X.509 membership tokens for one VO.
	VOAuthority = pki.VOAuthority
	// RevocationList is a signed CRL.
	RevocationList = pki.RevocationList
)

// PKI constructors and helpers.
var (
	NewAuthority        = pki.NewAuthority
	MustNewAuthority    = pki.MustNewAuthority
	GenerateKeyPair     = pki.GenerateKeyPair
	MustGenerateKeyPair = pki.MustGenerateKeyPair
	NewTrustStore       = pki.NewTrustStore
	NewVOAuthority      = pki.NewVOAuthority
	// NewNonce, ProveOwnership and VerifyOwnership implement the
	// challenge/response ownership proofs of §4.2.
	NewNonce        = pki.NewNonce
	ProveOwnership  = pki.ProveOwnership
	VerifyOwnership = pki.VerifyOwnership
	// VerifyDisclosure checks a selective disclosure's openings against
	// its signed commitments (§6.3).
	VerifyDisclosure = pki.VerifyDisclosure
	// DecodeX509Attribute decodes the X.509 v2-style attribute-
	// certificate encoding of a credential (§6.3 dual-format support).
	DecodeX509Attribute = pki.DecodeX509Attribute
)

// ---- semantic layer ----

type (
	// Ontology is a concept graph with is_a edges (§4.3).
	Ontology = ontology.Ontology
	// Concept is one ontology node.
	Concept = ontology.Concept
	// Implementation maps a concept onto a credential type/attribute.
	Implementation = ontology.Implementation
	// Mapper implements the paper's Algorithm 1.
	Mapper = ontology.Mapper
	// Mapping is one resolved concept → credential row.
	Mapping = ontology.Mapping
)

// Semantic-layer functions.
var (
	NewOntology       = ontology.New
	ParseOntology     = ontology.ParseOntology
	ComputeSimilarity = ontology.ComputeSimilarity
	AbstractPolicy    = ontology.Abstract
	ConceptRef        = ontology.ConceptRef
)

// ---- negotiation engine ----

type (
	// Party is a participant's negotiation identity.
	Party = negotiation.Party
	// Strategy selects the negotiation strategy.
	Strategy = negotiation.Strategy
	// Endpoint is one live negotiation state machine.
	Endpoint = negotiation.Endpoint
	// Message is one TN protocol message (XML-serializable).
	Message = negotiation.Message
	// Outcome is a finished negotiation's result.
	Outcome = negotiation.Outcome
	// Tree is the negotiation tree (§4.2, Fig. 2).
	Tree = negotiation.Tree
	// Ticket is a trust ticket that short-circuits repeat negotiations.
	Ticket = negotiation.Ticket
	// TicketCache stores received trust tickets for a party.
	TicketCache = negotiation.TicketCache
	// ResumeTicket lets an interrupted negotiation continue from its
	// last acknowledged tree state (the Trust-X recovery ticket).
	ResumeTicket = negotiation.ResumeTicket
)

// Negotiation strategies (§6.2).
const (
	Standard         = negotiation.Standard
	Trusting         = negotiation.Trusting
	Suspicious       = negotiation.Suspicious
	StrongSuspicious = negotiation.StrongSuspicious
)

// Negotiation entry points.
var (
	// Negotiate runs a complete in-process negotiation.
	Negotiate      = negotiation.Run
	NewRequester   = negotiation.NewRequester
	NewController  = negotiation.NewController
	ParseStrategy  = negotiation.ParseStrategy
	IssueTicket    = negotiation.IssueTicket
	NewTicketCache = negotiation.NewTicketCache
	// RestoreEndpoint rebuilds a live negotiation endpoint from a
	// suspended-state snapshot (see ResumeTicket).
	RestoreEndpoint = negotiation.RestoreEndpoint
)

// ---- VO substrate and extended lifecycle ----

type (
	// Contract is the VO collaboration contract (§2).
	Contract = vo.Contract
	// RoleSpec is one contract role with admission policies.
	RoleSpec = vo.RoleSpec
	// Rule is a collaboration rule.
	Rule = vo.Rule
	// VO is a live Virtual Organization.
	VO = vo.VO
	// Member is an admitted participant.
	Member = vo.Member
	// Registry is the public service repository (preparation phase).
	Registry = registry.Registry
	// Description is a published service description.
	Description = registry.Description
	// Initiator is the TN-extended VO Initiator (the paper's
	// contribution, §5).
	Initiator = core.Initiator
	// MemberAgent is the service-provider side of the lifecycle.
	MemberAgent = core.MemberAgent
	// Invitation is a formation-phase invitation.
	Invitation = core.Invitation
	// JoinOptions tunes the join protocol (TN on/off).
	JoinOptions = core.JoinOptions
	// ReputationSystem tracks member reputations.
	ReputationSystem = reputation.System
)

// Lifecycle constructors.
var (
	NewVO              = vo.New
	NewRegistry        = registry.New
	NewInitiator       = core.NewInitiator
	NewMemberAgent     = core.NewMemberAgent
	MembershipResource = vo.MembershipResource
	// ParseContract decodes a contract.xml document.
	ParseContract = vo.ParseContract
	// ParseMessage decodes a TN wire message (for custom transports).
	ParseMessage = negotiation.ParseMessage
)

// ---- storage ----

type (
	// Store is the embedded WAL-backed XML document store.
	Store = store.Store
	// Record is one stored document.
	Record = store.Record
)

// Store constructors. OpenStore leaves fsync to the OS write-back
// cache; OpenDurableStore puts every acknowledged write on stable
// storage, with concurrent writers sharing one fsync per commit batch
// (group commit).
var (
	NewStore         = store.New
	OpenStore        = store.Open
	OpenDurableStore = store.OpenDurable
)

// ---- telemetry ----

type (
	// MetricsRegistry collects counters, gauges and latency histograms;
	// set it on a Party (Metrics field) or a TNService to enable
	// collection, and mount MetricsRegistry.Handler at /metrics for a
	// Prometheus scrape. A nil registry disables collection everywhere.
	MetricsRegistry = telemetry.Registry
	// Counter is a monotonically increasing atomic counter.
	Counter = telemetry.Counter
	// Gauge is an atomic instantaneous value.
	Gauge = telemetry.Gauge
	// Histogram is a fixed-bucket latency/count histogram.
	Histogram = telemetry.Histogram
	// HistogramSnapshot is a mergeable point-in-time histogram copy with
	// quantile estimation.
	HistogramSnapshot = telemetry.HistogramSnapshot
	// TelemetryReport is the structured JSON run summary (counters,
	// gauges, per-histogram p50/p95/p99).
	TelemetryReport = telemetry.Report
	// SpanTrace is a per-negotiation span trace (see Party.Recorder).
	SpanTrace = telemetry.Trace
	// Span is one timed operation inside a SpanTrace.
	Span = telemetry.Span
)

// Telemetry constructors and default bucket layouts.
var (
	NewMetricsRegistry = telemetry.NewRegistry
	NewSpanTrace       = telemetry.NewTrace
	LatencyBuckets     = telemetry.LatencyBuckets
	CountBuckets       = telemetry.CountBuckets
)

// ---- web services (Fig. 5) ----

type (
	// TNService is the trust negotiation web service (§6.2).
	TNService = wsrpc.TNService
	// TNClient drives a requester against a remote TN service.
	TNClient = wsrpc.TNClient
	// ToolkitService is the VO Management toolkit service (§6.1).
	ToolkitService = wsrpc.ToolkitService
	// MemberClient is the member-edition client.
	MemberClient = wsrpc.MemberClient
	// Transport is the hardened HTTP transport shared by the clients:
	// per-request deadlines, retries with exponential backoff, and a
	// per-endpoint circuit breaker.
	Transport = wsrpc.Transport
	// RetryPolicy tunes the transport's backoff loop.
	RetryPolicy = wsrpc.RetryPolicy
	// TransportError is the typed RPC error carrying status, transience
	// and Retry-After information.
	TransportError = wsrpc.Error
	// SuspendedError wraps a negotiation interrupted by transport
	// failure; it carries the ResumeTicket to continue it.
	SuspendedError = wsrpc.SuspendedError
)

// Web-service constructors and error classification.
var (
	NewTNService      = wsrpc.NewTNService
	NewToolkitService = wsrpc.NewToolkitService
	// IsTemporary reports whether an RPC error is transient (worth
	// retrying).
	IsTemporary = wsrpc.IsTemporary
)

// ---- fault injection ----

type (
	// FaultConfig selects a deterministic, seeded fault mix (drops,
	// delays, duplicates, truncations) for the fault-injecting transport.
	FaultConfig = faultinject.Config
	// FaultTransport is an http.RoundTripper wrapper that injects the
	// configured faults; use it to exercise retry/replay/resume paths.
	FaultTransport = faultinject.Transport
	// FaultStats counts the faults a FaultTransport injected.
	FaultStats = faultinject.Stats
)

// NewFaultTransport wraps base (nil = http.DefaultTransport) with
// deterministic fault injection.
var NewFaultTransport = faultinject.New
