// Command xtnl is the X-TNL toolbox: it lints policy files, formats and
// inspects credential/policy XML, generates credential authorities, and
// issues and verifies credentials from the command line.
//
// Subcommands:
//
//	xtnl lint   -policies <file.tnl>                         parse & report policies
//	xtnl fmt    -in <file.xml>                               pretty-print an XML artifact
//	xtnl keygen -name <CA name> -out <ca.xml>                create an authority
//	xtnl issue  -ca <ca.xml> -type <T> -holder <H> [-attr k=v]... [-sensitivity low|medium|high] [-out cred.xml]
//	xtnl verify -ca <ca.xml> -in <cred.xml>                  verify a credential
//	xtnl show   -in <file.xml>                               summarize a credential or policy
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"trustvo/internal/cli"
	"trustvo/internal/ontology"
	"trustvo/internal/pki"
	"trustvo/internal/xmldom"
	"trustvo/internal/xtnl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xtnl: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "lint":
		err = cmdLint(args)
	case "fmt":
		err = cmdFmt(args)
	case "keygen":
		err = cmdKeygen(args)
	case "issue":
		err = cmdIssue(args)
	case "verify":
		err = cmdVerify(args)
	case "show":
		err = cmdShow(args)
	default:
		usage()
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: xtnl <lint|fmt|keygen|issue|verify|show> [flags]")
	os.Exit(2)
}

func cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	path := fs.String("policies", "", "policy DSL file (required)")
	fs.Parse(args)
	if *path == "" {
		fs.Usage()
		os.Exit(2)
	}
	text, err := os.ReadFile(*path)
	if err != nil {
		return err
	}
	pols, err := xtnl.ParsePolicies(string(text))
	if err != nil {
		return err
	}
	byResource := make(map[string]int)
	for _, p := range pols {
		byResource[p.Resource]++
		fmt.Println(p.String())
	}
	fmt.Fprintf(os.Stderr, "%d policies across %d resources — OK\n", len(pols), len(byResource))
	return nil
}

func cmdFmt(args []string) error {
	fs := flag.NewFlagSet("fmt", flag.ExitOnError)
	in := fs.String("in", "", "XML file (required); '-' for stdin")
	write := fs.Bool("w", false, "rewrite the file in place")
	fs.Parse(args)
	if *in == "" {
		fs.Usage()
		os.Exit(2)
	}
	var text []byte
	var err error
	if *in == "-" {
		if text, err = readAll(os.Stdin); err != nil {
			return err
		}
	} else if text, err = os.ReadFile(*in); err != nil {
		return err
	}
	root, err := xmldom.ParseString(string(text))
	if err != nil {
		return err
	}
	out := root.Indented()
	if *write && *in != "-" {
		return os.WriteFile(*in, []byte(out), 0o644)
	}
	fmt.Print(out)
	return nil
}

func readAll(f *os.File) ([]byte, error) {
	var out []byte
	buf := make([]byte, 4096)
	for {
		n, err := f.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			if err.Error() == "EOF" {
				return out, nil
			}
			return out, nil
		}
		if n == 0 {
			return out, nil
		}
	}
}

func cmdKeygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	name := fs.String("name", "", "authority name (required)")
	out := fs.String("out", "ca.xml", "output file")
	fs.Parse(args)
	if *name == "" {
		fs.Usage()
		os.Exit(2)
	}
	ca, err := pki.NewAuthority(*name)
	if err != nil {
		return err
	}
	if err := cli.SaveAuthority(*out, ca); err != nil {
		return err
	}
	log.Printf("authority %q written to %s", *name, *out)
	return nil
}

type attrsFlag []xtnl.Attribute

func (a *attrsFlag) String() string { return fmt.Sprint([]xtnl.Attribute(*a)) }
func (a *attrsFlag) Set(v string) error {
	k, val, ok := strings.Cut(v, "=")
	if !ok || k == "" {
		return fmt.Errorf("attribute must be name=value, got %q", v)
	}
	*a = append(*a, xtnl.Attribute{Name: k, Value: val})
	return nil
}

func cmdIssue(args []string) error {
	fs := flag.NewFlagSet("issue", flag.ExitOnError)
	caPath := fs.String("ca", "", "authority file (required)")
	credType := fs.String("type", "", "credential type (required)")
	holder := fs.String("holder", "", "holder name")
	sens := fs.String("sensitivity", "medium", "low|medium|high")
	days := fs.Int("days", 365, "validity in days")
	out := fs.String("out", "", "output file (stdout when empty)")
	var attrs attrsFlag
	fs.Var(&attrs, "attr", "content attribute name=value (repeatable)")
	fs.Parse(args)
	if *caPath == "" || *credType == "" {
		fs.Usage()
		os.Exit(2)
	}
	ca, err := cli.LoadAuthority(*caPath)
	if err != nil {
		return err
	}
	cred, err := ca.Issue(pki.IssueRequest{
		Type:        *credType,
		Holder:      *holder,
		Attributes:  attrs,
		Sensitivity: xtnl.ParseSensitivity(*sens),
		Lifetime:    time.Duration(*days) * 24 * time.Hour,
	})
	if err != nil {
		return err
	}
	text := cred.DOM().Indented()
	if *out == "" {
		fmt.Print(text)
		return nil
	}
	return os.WriteFile(*out, []byte(text), 0o644)
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	caPath := fs.String("ca", "", "authority file (required)")
	in := fs.String("in", "", "credential XML file (required)")
	fs.Parse(args)
	if *caPath == "" || *in == "" {
		fs.Usage()
		os.Exit(2)
	}
	ca, err := cli.LoadAuthority(*caPath)
	if err != nil {
		return err
	}
	text, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	cred, err := xtnl.ParseCredential(string(text))
	if err != nil {
		return err
	}
	if err := pki.NewTrustStore(ca).Verify(cred, time.Now()); err != nil {
		return err
	}
	log.Printf("OK: %s %q issued by %s, valid until %s",
		cred.ID, cred.Type, cred.Issuer, cred.ValidUntil.Format(xtnl.TimeLayout))
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	in := fs.String("in", "", "credential or policy XML file (required)")
	fs.Parse(args)
	if *in == "" {
		fs.Usage()
		os.Exit(2)
	}
	text, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	root, err := xmldom.ParseString(string(text))
	if err != nil {
		return err
	}
	switch root.Name {
	case "credential":
		cred, err := xtnl.CredentialFromDOM(root)
		if err != nil {
			return err
		}
		fmt.Printf("credential %s\n  type:        %s\n  issuer:      %s\n  holder:      %s\n  sensitivity: %s\n",
			cred.ID, cred.Type, cred.Issuer, cred.Holder, cred.Sensitivity)
		if !cred.ValidUntil.IsZero() {
			fmt.Printf("  valid:       %s .. %s\n",
				cred.ValidFrom.Format(xtnl.TimeLayout), cred.ValidUntil.Format(xtnl.TimeLayout))
		}
		for _, a := range cred.Attributes {
			fmt.Printf("  attr %s = %q\n", a.Name, a.Value)
		}
		fmt.Printf("  signed:      %v\n", len(cred.Signature) > 0)
	case "policy":
		pol, err := xtnl.PolicyFromDOM(root)
		if err != nil {
			return err
		}
		fmt.Println(pol.String())
	case "X-Profile":
		prof, err := xtnl.ParseProfile(string(text))
		if err != nil {
			return err
		}
		fmt.Printf("X-Profile of %s: %d credentials\n", prof.Owner, prof.Len())
		for _, c := range prof.All() {
			fmt.Printf("  %-28s issuer=%s sensitivity=%s\n", c.Type, c.Issuer, c.Sensitivity)
		}
	case "Ontology":
		o, err := ontology.ParseOntology(string(text))
		if err != nil {
			return err
		}
		fmt.Printf("ontology: %d concepts\n", o.Len())
		for _, name := range o.Names() {
			c, _ := o.Concept(name)
			fmt.Printf("  %s", name)
			if parents := o.Parents(name); len(parents) > 0 {
				fmt.Printf(" is_a %s", strings.Join(parents, ", "))
			}
			fmt.Println()
			for _, im := range c.Implementations {
				fmt.Printf("    implemented by %s\n", im)
			}
		}
	default:
		return fmt.Errorf("unrecognized artifact <%s>", root.Name)
	}
	return nil
}
