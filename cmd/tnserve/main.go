// Command tnserve runs the standalone Trust-X trust negotiation web
// service (paper §6.2, Fig. 5): it loads a party configuration directory
// and answers StartNegotiation / PolicyExchange / CredentialExchange
// requests as that party.
//
// Usage:
//
//	tnserve -party <dir> [-addr :8080]
//
// Generate a demo workspace first with `voctl demo -dir demo`; then:
//
//	tnserve -party demo/initiator
//
// The service grants an opaque receipt for any resource its disclosure
// policies release; to integrate grants with a VO (membership tokens),
// run `voctl serve` instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"trustvo/internal/cli"
	"trustvo/internal/partydb"
	"trustvo/internal/store"
	"trustvo/internal/wsrpc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tnserve: ")
	var (
		partyDir = flag.String("party", "", "party configuration directory (required)")
		addr     = flag.String("addr", ":8080", "listen address")
		dbPath   = flag.String("db", "", "WAL-backed document store for policies and credentials; "+
			"the party's profile and policies are written to it at startup and every "+
			"StartNegotiation reloads them from it (the paper's §6.2 DB path)")
	)
	flag.Parse()
	if *partyDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	party, err := cli.LoadParty(*partyDir)
	if err != nil {
		log.Fatal(err)
	}
	if party.Grant == nil {
		party.Grant = func(resource, peer string) ([]byte, error) {
			return []byte(fmt.Sprintf("granted:%s:to:%s", resource, peer)), nil
		}
	}
	svc := wsrpc.NewTNService(party)
	if *dbPath != "" {
		db, err := store.Open(*dbPath)
		if err != nil {
			log.Fatal(err)
		}
		defer db.Close()
		if err := partydb.SaveParty(db, party); err != nil {
			log.Fatal(err)
		}
		if err := db.Sync(); err != nil {
			log.Fatal(err)
		}
		svc.DB = db
		log.Printf("policies and credentials stored in %s", *dbPath)
	}
	mux := http.NewServeMux()
	svc.Register(mux)
	log.Printf("negotiating as %q (strategy %s) on %s", party.Name, party.Strategy, *addr)
	log.Printf("operations: POST /tn/start /tn/policyExchange /tn/credentialExchange, GET /tn/status")
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}
