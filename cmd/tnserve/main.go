// Command tnserve runs the standalone Trust-X trust negotiation web
// service (paper §6.2, Fig. 5): it loads a party configuration directory
// and answers StartNegotiation / PolicyExchange / CredentialExchange
// requests as that party.
//
// Usage:
//
//	tnserve -party <dir> [-addr :8080] [-v] [-report run.json]
//
// Generate a demo workspace first with `voctl demo -dir demo`; then:
//
//	tnserve -party demo/initiator
//
// The service grants an opaque receipt for any resource its disclosure
// policies release; to integrate grants with a VO (membership tokens),
// run `voctl serve` instead.
//
// Telemetry is always collected and served at GET /metrics (Prometheus
// text format) alongside GET /healthz. -v (or TRUSTVO_DEBUG=1) logs one
// key=value line per negotiation message; -report writes a structured
// JSON run report — counters, gauges, and per-phase p50/p95/p99 — when
// the server shuts down on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"trustvo/internal/cli"
	"trustvo/internal/cluster"
	"trustvo/internal/partydb"
	"trustvo/internal/pki"
	"trustvo/internal/store"
	"trustvo/internal/store/cacher"
	"trustvo/internal/telemetry"
	"trustvo/internal/wsrpc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tnserve: ")
	var (
		partyDir = flag.String("party", "", "party configuration directory (required)")
		addr     = flag.String("addr", ":8080", "listen address")
		dbPath   = flag.String("db", "", "WAL-backed document store for policies and credentials; "+
			"the party's profile and policies are written to it at startup and every "+
			"StartNegotiation reloads them from it (the paper's §6.2 DB path)")
		dbBackend = flag.String("db.backend", store.BackendFSWAL,
			"storage backend for -db: "+strings.Join(store.BackendKinds(), "|")+
				" (memory keeps nothing across restarts)")
		dbCacheTTL = flag.Duration("db.cachettl", cacher.DefaultTTL,
			"TTL of the read-through party cache over -db; 0 disables the cache "+
				"(reads then hit the store directly on every reload)")
		verbose = flag.Bool("v", false, "log one line per negotiation message handled "+
			"(TRUSTVO_DEBUG=1 does the same)")
		reportPath = flag.String("report", "", "write a JSON telemetry report to this file on shutdown")

		clusterName  = flag.String("cluster.name", "", "join a sharded TN cluster under this node name (enables the /cluster RPCs and ring routing)")
		clusterPeers = flag.String("cluster.peers", "", "comma-separated name=url peer list, e.g. n2=http://host2:8080,n3=http://host3:8080")
		clusterRedir = flag.Bool("cluster.redirect", false, "307-redirect misrouted sessions to their owner instead of proxying")
		clusterSync  = flag.Bool("cluster.sync", false, "gate store write acks on replication to a follower (requires -db)")
	)
	flag.Parse()
	if *partyDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	party, err := cli.LoadParty(*partyDir)
	if err != nil {
		log.Fatal(err)
	}
	if party.Grant == nil {
		party.Grant = func(resource, peer string) ([]byte, error) {
			return []byte(fmt.Sprintf("granted:%s:to:%s", resource, peer)), nil
		}
	}
	svc := wsrpc.NewTNService(party)
	svc.Logf = log.Printf
	if *verbose || os.Getenv("TRUSTVO_DEBUG") != "" {
		svc.Debugf = log.Printf
	}

	// Cluster mode: this node joins a consistent-hash ring with its
	// peers, serves the /cluster RPCs (standby shipping, migration,
	// replication) and routes misowned sessions to their ring owner.
	var node *cluster.Node
	if *clusterName != "" {
		ring := cluster.NewRing(0)
		ring.Add(*clusterName)
		peers := map[string]string{}
		for _, kv := range strings.Split(*clusterPeers, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			name, url, ok := strings.Cut(kv, "=")
			if !ok {
				log.Fatalf("-cluster.peers: entry %q is not name=url", kv)
			}
			ring.Add(name)
			peers[name] = url
		}
		keys := party.Keys
		if keys == nil {
			// Migration tickets need a signing key every node shares; an
			// ephemeral one only works single-process (tests, demos).
			keys = pki.MustGenerateKeyPair()
			log.Printf("cluster: party has no keypair; session tickets use an ephemeral key only this process trusts")
		}
		node, err = cluster.NewNode(cluster.Config{
			Name:      *clusterName,
			Ring:      ring,
			TN:        svc,
			Transport: &wsrpc.Transport{RequestTimeout: 5 * time.Second, Metrics: svc.Metrics},
			Metrics:   svc.Metrics,
			Keys:      keys,
			Redirect:  *clusterRedir,
			SyncRepl:  *clusterSync,
			Logf:      log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		for peer, url := range peers {
			node.SetPeer(peer, url)
		}
		if *dbPath == "" {
			// Replication needs a store to ship; without -db it is an
			// in-memory one (sessions still migrate, documents do not
			// survive a restart).
			node.AttachDB(store.NewWithOptions(store.Options{OnCommit: node.OnCommit}))
		}
		log.Printf("cluster: node %q on a %d-node ring (redirect=%v sync=%v)",
			*clusterName, len(ring.Nodes()), *clusterRedir, *clusterSync)
	}

	if *dbPath != "" {
		// Durable open: the party's credentials and any suspended
		// negotiations must survive a crash, and group commit keeps the
		// fsync cost shared across concurrent session writes. In cluster
		// mode every commit also feeds the replication log.
		opts := store.Options{Backend: *dbBackend, Durability: store.DurabilityGroup}
		if node != nil {
			opts.OnCommit = node.OnCommit
		}
		db, err := store.OpenWithOptions(*dbPath, opts)
		if err != nil {
			log.Fatal(err)
		}
		defer db.Close()
		if node != nil {
			node.AttachDB(db)
		}
		db.Instrument(svc.Metrics)
		if err := partydb.SaveParty(db, party); err != nil {
			log.Fatal(err)
		}
		if err := db.Sync(); err != nil {
			log.Fatal(err)
		}
		svc.DB = db
		if *dbCacheTTL > 0 {
			// Read-through coalescing cache for the hot party reload:
			// commits (including replicated applies) invalidate it, so it
			// only trades backend reads, never freshness.
			c := cacher.New(db, *dbCacheTTL)
			c.Instrument(svc.Metrics)
			svc.PartyReader = c
		}
		log.Printf("policies and credentials stored in %s (backend %s, cache ttl %s)",
			*dbPath, *dbBackend, *dbCacheTTL)
		// pick up negotiations a previous run suspended on shutdown
		if n, err := svc.ResumeSessions(db); err != nil {
			log.Printf("resuming suspended negotiations: %v", err)
		} else if n > 0 {
			log.Printf("resumed %d suspended negotiation(s)", n)
		}
	}
	mux := http.NewServeMux()
	if node != nil {
		node.Register(mux) // wraps the TN routes with ring routing + /cluster RPCs
	} else {
		svc.Register(mux)
	}
	log.Printf("negotiating as %q (strategy %s) on %s", party.Name, party.Strategy, *addr)
	log.Printf("operations: POST /tn/start /tn/policyExchange /tn/credentialExchange, GET /tn/status /metrics /healthz")

	srv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if node != nil {
		node.Start(ctx)
	}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	// The server has drained. In cluster mode, migrate live negotiations
	// to their new ring owners (signed session tickets) so clients resume
	// against survivors without waiting for this process to come back.
	if node != nil {
		node.Ring().Remove(*clusterName)
		drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		moved, err := node.Drain(drainCtx)
		cancel()
		if err != nil {
			log.Printf("cluster drain: %v", err)
		}
		if moved > 0 {
			log.Printf("cluster: migrated %d live negotiation(s) to peers", moved)
		}
	}
	// Persist whatever is still local so clients can continue against the
	// next run (SIGTERM-safe restarts).
	if svc.DB != nil {
		if n, err := svc.SuspendSessions(svc.DB); err != nil {
			log.Printf("suspending live negotiations: %v", err)
		} else if n > 0 {
			log.Printf("suspended %d live negotiation(s) to %s", n, *dbPath)
		}
	}
	if *reportPath != "" {
		if err := writeReport(svc.Metrics, *reportPath); err != nil {
			log.Fatal(err)
		}
		log.Printf("telemetry report written to %s", *reportPath)
	}
}

func writeReport(reg *telemetry.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.Report().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
