// Command voctl is the VO Management toolkit CLI (paper §6.1): it runs
// the Initiator edition as a service and drives the Member edition
// against it.
//
// Subcommands:
//
//	voctl demo    -dir <dir>                       generate a runnable demo workspace
//	voctl serve   -party <dir> -contract <file>    host the initiator toolkit (+ TN service)
//	voctl publish -party <dir> -url <base> -service <name> [-capability c]...
//	voctl join    -party <dir> -url <base> -role <role> [-direct]
//	voctl members -url <base>
//	voctl status  -url <base>
//	voctl phase   -url <base> -to formation|operation|dissolution
//	voctl operate -party <dir> -url <base> -operation <op>
//	voctl reputation -url <base> -member <name>
//	voctl audit   -url <base>
//	voctl cluster-status -url <base>[,<base>...]   probe sharded-TN cluster nodes
//
// A complete session:
//
//	voctl demo -dir demo
//	voctl serve -party demo/initiator -contract demo/initiator/contract.xml &
//	voctl publish -party demo/member -url http://localhost:8080 -service DesignPortal -capability design-db
//	voctl join -party demo/member -url http://localhost:8080 -role DesignWebPortal
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"trustvo/internal/cli"
	"trustvo/internal/core"
	"trustvo/internal/negotiation"
	"trustvo/internal/partydb"
	"trustvo/internal/store"
	"trustvo/internal/vo/registry"
	"trustvo/internal/wsrpc"
	"trustvo/internal/xmldom"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("voctl: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "demo":
		err = cmdDemo(args)
	case "serve":
		err = cmdServe(args)
	case "publish":
		err = cmdPublish(args)
	case "join":
		err = cmdJoin(args)
	case "members":
		err = cmdMembers(args)
	case "status":
		err = cmdStatus(args)
	case "phase":
		err = cmdPhase(args)
	case "operate":
		err = cmdOperate(args)
	case "reputation":
		err = cmdReputation(args)
	case "audit":
		err = cmdAudit(args)
	case "cluster-status":
		err = cmdClusterStatus(args)
	default:
		usage()
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: voctl <demo|serve|publish|join|members|status|phase|operate|reputation|audit|cluster-status> [flags]")
	os.Exit(2)
}

// cmdClusterStatus probes each node of a sharded TN cluster and prints
// one line per node: replication role, epoch, and log positions. The
// lag of a follower is the leader's head minus the follower's applied.
func cmdClusterStatus(args []string) error {
	fs := flag.NewFlagSet("cluster-status", flag.ExitOnError)
	urls := fs.String("url", "http://localhost:8080", "comma-separated node base URLs")
	fs.Parse(args)
	client := &http.Client{Timeout: 5 * time.Second}
	var leaderHead int64 = -1
	type row struct {
		base, node, role string
		epoch            string
		pos, applied     int64
	}
	var rows []row
	for _, base := range strings.Split(*urls, ",") {
		base = strings.TrimRight(strings.TrimSpace(base), "/")
		if base == "" {
			continue
		}
		resp, err := client.Get(base + "/cluster/status")
		if err != nil {
			fmt.Printf("%-28s unreachable: %v\n", base, err)
			continue
		}
		root, perr := xmldom.Parse(resp.Body)
		resp.Body.Close()
		if perr != nil || resp.StatusCode != http.StatusOK || root.Name != "clusterStatus" {
			fmt.Printf("%-28s not a cluster node (status %d)\n", base, resp.StatusCode)
			continue
		}
		r := row{
			base:  base,
			node:  root.AttrOr("node", "?"),
			role:  "follower",
			epoch: root.AttrOr("epoch", "0"),
		}
		fmt.Sscanf(root.AttrOr("pos", "0"), "%d", &r.pos)
		fmt.Sscanf(root.AttrOr("applied", "0"), "%d", &r.applied)
		if root.AttrOr("leader", "") == "true" {
			r.role = "leader"
			leaderHead = r.pos
		}
		rows = append(rows, r)
	}
	for _, r := range rows {
		lag := ""
		if r.role == "follower" && leaderHead >= 0 {
			lag = fmt.Sprintf(" lag=%d", leaderHead-r.applied)
		}
		fmt.Printf("%-28s node=%-8s role=%-8s epoch=%s pos=%d applied=%d%s\n",
			r.base, r.node, r.role, r.epoch, r.pos, r.applied, lag)
	}
	if len(rows) == 0 {
		return errors.New("no cluster nodes answered")
	}
	return nil
}

func cmdDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	dir := fs.String("dir", "demo", "output directory")
	fs.Parse(args)
	if err := cli.WriteDemo(*dir); err != nil {
		return err
	}
	log.Printf("demo workspace written to %s (ca.xml, initiator/, member/)", *dir)
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	partyDir := fs.String("party", "", "initiator party directory (required)")
	contractPath := fs.String("contract", "", "contract.xml path (required)")
	addr := fs.String("addr", ":8080", "listen address")
	dbPath := fs.String("db", "", "WAL-backed store for the initiator's policies and credentials "+
		"(reloaded on every StartNegotiation, the paper's §6.2 DB path)")
	verbose := fs.Bool("v", false, "log one line per negotiation message handled "+
		"(TRUSTVO_DEBUG=1 does the same)")
	fs.Parse(args)
	if *partyDir == "" || *contractPath == "" {
		fs.Usage()
		os.Exit(2)
	}
	party, err := cli.LoadParty(*partyDir)
	if err != nil {
		return err
	}
	contract, err := cli.LoadContract(*contractPath)
	if err != nil {
		return err
	}
	ini, err := core.NewInitiator(contract, party, registry.New())
	if err != nil {
		return err
	}
	if err := ini.VO.StartFormation(); err != nil {
		return err
	}
	tk := wsrpc.NewToolkitService(ini)
	tk.TN.Logf = log.Printf
	if *verbose || os.Getenv("TRUSTVO_DEBUG") != "" {
		tk.TN.Debugf = log.Printf
	}
	if *dbPath != "" {
		// Durable open: see cmd/tnserve — acknowledged writes survive a
		// crash, group commit amortizes the fsyncs.
		db, err := store.OpenDurable(*dbPath)
		if err != nil {
			return err
		}
		defer db.Close()
		db.Instrument(tk.TN.Metrics)
		// persist AFTER NewInitiator: the admission policies and the
		// VO-property credential are part of the negotiating state
		if err := partydb.SaveParty(db, party); err != nil {
			return err
		}
		if err := db.Sync(); err != nil {
			return err
		}
		tk.TN.DB = db
		log.Printf("policies and credentials stored in %s", *dbPath)
	}
	mux := http.NewServeMux()
	tk.Register(mux)
	log.Printf("VO %q (initiator %s) in %s phase on %s (metrics at /metrics)", contract.VOName, party.Name, ini.VO.Phase(), *addr)
	return http.ListenAndServe(*addr, mux)
}

type stringsFlag []string

func (s *stringsFlag) String() string     { return strings.Join(*s, ",") }
func (s *stringsFlag) Set(v string) error { *s = append(*s, v); return nil }

func memberClient(fs *flag.FlagSet, args []string) (*wsrpc.MemberClient, *flag.FlagSet, error) {
	partyDir := fs.String("party", "", "party directory")
	url := fs.String("url", "http://localhost:8080", "toolkit base URL")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	fs.Parse(args)
	c := &wsrpc.MemberClient{
		BaseURL:   *url,
		Transport: &wsrpc.Transport{RequestTimeout: *timeout},
	}
	if *partyDir != "" {
		p, err := cli.LoadParty(*partyDir)
		if err != nil {
			return nil, nil, err
		}
		c.Party = p
	}
	return c, fs, nil
}

func cmdPublish(args []string) error {
	fs := flag.NewFlagSet("publish", flag.ExitOnError)
	service := fs.String("service", "", "service name (required)")
	quality := fs.String("quality", "", "advertised quality")
	var caps stringsFlag
	fs.Var(&caps, "capability", "offered capability (repeatable)")
	c, _, err := memberClient(fs, args)
	if err != nil {
		return err
	}
	if c.Party == nil || *service == "" {
		fs.Usage()
		os.Exit(2)
	}
	err = c.Publish(context.Background(), &registry.Description{
		Provider: c.Party.Name, Service: *service,
		Capabilities: caps, Quality: *quality,
	})
	if err != nil {
		return err
	}
	log.Printf("published %s (%s)", c.Party.Name, *service)
	return nil
}

func cmdJoin(args []string) error {
	fs := flag.NewFlagSet("join", flag.ExitOnError)
	role := fs.String("role", "", "role to join (required)")
	direct := fs.Bool("direct", false, "baseline join without trust negotiation")
	verbose := fs.Bool("v", false, "trace the negotiation message flow")
	c, _, err := memberClient(fs, args)
	if err != nil {
		return err
	}
	if c.Party == nil || *role == "" {
		fs.Usage()
		os.Exit(2)
	}
	if *verbose {
		c.Party.Trace = func(dir string, m *negotiation.Message) {
			arrow := "->"
			if dir == "recv" {
				arrow = "<-"
			}
			log.Printf("  tn %s %s", arrow, m.Summary())
		}
	}
	ctx := context.Background()
	if *direct {
		der, err := c.JoinDirect(ctx, *role)
		if err != nil {
			return err
		}
		log.Printf("joined %s without negotiation; membership token %d bytes (DER)", *role, len(der))
		return nil
	}
	der, out, err := c.Join(ctx, *role)
	// A transport failure mid-negotiation suspends into a resume ticket;
	// pick it up in place so a blip doesn't abandon the join.
	for resumed := 0; err != nil && resumed < 3; resumed++ {
		var se *wsrpc.SuspendedError
		if !errors.As(err, &se) {
			break
		}
		log.Printf("negotiation %s suspended (%v); resuming", se.Ticket.NegID, se.Unwrap())
		der, out, err = c.ResumeJoin(ctx, se.Ticket)
	}
	if err != nil {
		return err
	}
	log.Printf("joined %s after a %d-round trust negotiation; membership token %d bytes (DER)",
		*role, out.Rounds, len(der))
	for _, d := range out.Received {
		log.Printf("  counterpart disclosed: %s (issuer %s)", d.Credential.Type, d.Credential.Issuer)
	}
	for _, d := range out.Sent {
		log.Printf("  we disclosed:          %s (issuer %s)", d.Credential.Type, d.Credential.Issuer)
	}
	return nil
}

func cmdMembers(args []string) error {
	fs := flag.NewFlagSet("members", flag.ExitOnError)
	c, _, err := memberClient(fs, args)
	if err != nil {
		return err
	}
	members, err := c.Members(context.Background())
	if err != nil {
		return err
	}
	names := make([]string, 0, len(members))
	for n := range members {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%-24s %s\n", n, members[n])
	}
	return nil
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	c, _, err := memberClient(fs, args)
	if err != nil {
		return err
	}
	phase, members, err := c.VOStatus(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("phase=%s members=%d\n", phase, members)
	return nil
}

func cmdPhase(args []string) error {
	fs := flag.NewFlagSet("phase", flag.ExitOnError)
	to := fs.String("to", "", "target phase: formation|operation|dissolution")
	c, _, err := memberClient(fs, args)
	if err != nil {
		return err
	}
	if *to == "" {
		fs.Usage()
		os.Exit(2)
	}
	if err := c.Phase(context.Background(), *to); err != nil {
		return fmt.Errorf("phase change failed: %w", err)
	}
	log.Printf("phase changed to %s", *to)
	return nil
}

func cmdOperate(args []string) error {
	fs := flag.NewFlagSet("operate", flag.ExitOnError)
	op := fs.String("operation", "", "operation to invoke (required)")
	c, _, err := memberClient(fs, args)
	if err != nil {
		return err
	}
	if c.Party == nil || *op == "" {
		fs.Usage()
		os.Exit(2)
	}
	if err := c.Operate(context.Background(), *op); err != nil {
		return err
	}
	log.Printf("operation %q authorized for %s", *op, c.Party.Name)
	return nil
}

func cmdReputation(args []string) error {
	fs := flag.NewFlagSet("reputation", flag.ExitOnError)
	member := fs.String("member", "", "member name (required)")
	c, _, err := memberClient(fs, args)
	if err != nil {
		return err
	}
	if *member == "" {
		fs.Usage()
		os.Exit(2)
	}
	score, err := c.Reputation(context.Background(), *member)
	if err != nil {
		return err
	}
	fmt.Printf("%s %.4f\n", *member, score)
	return nil
}

func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	c, _, err := memberClient(fs, args)
	if err != nil {
		return err
	}
	entries, err := c.Audit(context.Background())
	if err != nil {
		return err
	}
	for _, e := range entries {
		verdict := "ALLOWED"
		if !e.Allowed {
			verdict = "DENIED "
		}
		fmt.Printf("%s  %s  %-24s %-16s %s\n",
			e.At.Format("2006-01-02T15:04:05Z"), verdict, e.Member, e.Operation, e.Detail)
	}
	return nil
}
