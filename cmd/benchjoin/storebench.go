package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"trustvo/internal/store"
	"trustvo/internal/telemetry"
)

// Durable-write store mode (-store): the EXT-12 group-commit A/B. The
// same concurrent put workload runs twice against the crash-safe store —
// once under DurabilityEveryOp (the v1 behavior: one fsync per put) and
// once under DurabilityGroup (one fsync per commit batch) — and the
// report records throughput, per-put latency percentiles and the fsync
// accounting that explains the difference. Both modes give the same
// guarantee (a nil Put is on stable storage); only the flush schedule
// differs.

// storeBenchReport is the -store JSON schema (BENCH_store.json).
type storeBenchReport struct {
	Schema  string `json:"schema"`
	Writers int    `json:"writers"`
	// Puts is the total put count per mode (each mode writes its own
	// fresh store).
	Puts    int            `json:"puts"`
	EveryOp storeModeStats `json:"every_op"`
	Group   storeModeStats `json:"group_commit"`
	// Speedup is group-commit puts/sec over every-op puts/sec.
	Speedup float64 `json:"speedup"`
}

// storeModeStats is one half of the A/B.
type storeModeStats struct {
	ElapsedMS    float64   `json:"elapsed_ms"`
	PutsPerSec   float64   `json:"puts_per_sec"`
	PutLatencyMS latencyMS `json:"put_latency_ms"`
	// Fsyncs is store_fsync_total for the run; MeanBatch is committed
	// puts per fsync (store_wal_appends_total / store_fsync_total), the
	// realized group-commit coalescing factor.
	Fsyncs    int64   `json:"fsyncs"`
	MeanBatch float64 `json:"mean_batch"`
	Rotations int64   `json:"segment_rotations"`
}

// runStoreBench runs the A/B and writes the report to outPath.
func runStoreBench(w *os.File, writers, puts int, outPath string) error {
	if writers < 1 {
		writers = 1
	}
	if puts < writers {
		puts = writers
	}
	dir, err := os.MkdirTemp("", "storebench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	every, err := storeBenchMode(filepath.Join(dir, "everyop.wal"), store.DurabilityEveryOp, writers, puts)
	if err != nil {
		return fmt.Errorf("every-op pass: %w", err)
	}
	group, err := storeBenchMode(filepath.Join(dir, "group.wal"), store.DurabilityGroup, writers, puts)
	if err != nil {
		return fmt.Errorf("group-commit pass: %w", err)
	}

	rep := storeBenchReport{
		Schema:  "trustvo.benchjoin.store/v1",
		Writers: writers,
		Puts:    puts,
		EveryOp: every,
		Group:   group,
		Speedup: group.PutsPerSec / every.PutsPerSec,
	}
	fmt.Fprintf(w, "EXT-12 — durable puts, %d writers, %d puts per mode\n", writers, puts)
	fmt.Fprintf(w, "  %-22s %10s %12s %10s %12s\n", "mode", "puts/sec", "p50 / p99", "fsyncs", "puts/fsync")
	for _, row := range []struct {
		name string
		s    storeModeStats
	}{{"fsync-every-put (v1)", every}, {"group commit", group}} {
		fmt.Fprintf(w, "  %-22s %10.0f %5.2f/%5.2fms %10d %12.1f\n",
			row.name, row.s.PutsPerSec, row.s.PutLatencyMS.P50, row.s.PutLatencyMS.P99,
			row.s.Fsyncs, row.s.MeanBatch)
	}
	fmt.Fprintf(w, "  speedup: %.2fx\n", rep.Speedup)

	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "  report written to %s\n", outPath)
	}
	return nil
}

// storeBenchMode drives the concurrent put workload against a fresh
// store opened with durability d and collects the mode's stats.
func storeBenchMode(path string, d store.Durability, writers, puts int) (storeModeStats, error) {
	reg := telemetry.NewRegistry()
	s, err := store.OpenWithOptions(path, store.Options{Durability: d})
	if err != nil {
		return storeModeStats{}, err
	}
	s.Instrument(reg)

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		samples []time.Duration
		firstMu sync.Mutex
		campErr error
	)
	recordErr := func(err error) {
		firstMu.Lock()
		defer firstMu.Unlock()
		if campErr == nil {
			campErr = err
		}
	}
	perWorker := puts / writers
	extra := puts % writers
	t0 := time.Now()
	for i := 0; i < writers; i++ {
		n := perWorker
		if i < extra {
			n++
		}
		wg.Add(1)
		go func(worker, n int) {
			defer wg.Done()
			local := make([]time.Duration, 0, n)
			for j := 0; j < n; j++ {
				doc := fmt.Sprintf(`<doc seq="%d" worker="%d"/>`, j, worker)
				key := fmt.Sprintf("w%02d-%06d", worker, j)
				js := time.Now()
				if err := s.PutXML("bench", key, doc); err != nil {
					recordErr(fmt.Errorf("worker %d put %d: %w", worker, j, err))
					return
				}
				local = append(local, time.Since(js))
			}
			mu.Lock()
			defer mu.Unlock()
			samples = append(samples, local...)
		}(i, n)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	if campErr != nil {
		s.Destroy()
		return storeModeStats{}, campErr
	}
	if err := s.Destroy(); err != nil {
		return storeModeStats{}, err
	}

	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	fsyncs := reg.Counter("store_fsync_total").Value()
	appends := reg.Counter("store_wal_appends_total").Value()
	stats := storeModeStats{
		ElapsedMS:  durMS(elapsed),
		PutsPerSec: float64(len(samples)) / elapsed.Seconds(),
		PutLatencyMS: latencyMS{
			P50: durMS(percentile(samples, 0.50)),
			P95: durMS(percentile(samples, 0.95)),
			P99: durMS(percentile(samples, 0.99)),
		},
		Fsyncs:    fsyncs,
		Rotations: reg.Counter("store_segment_rotations_total").Value(),
	}
	if fsyncs > 0 {
		stats.MeanBatch = float64(appends) / float64(fsyncs)
	}
	return stats, nil
}
