package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"trustvo/internal/store"
	"trustvo/internal/store/cacher"
	"trustvo/internal/telemetry"
)

// Durable-write store mode (-store): the EXT-12 group-commit A/B. The
// same concurrent put workload runs twice against the crash-safe store —
// once under DurabilityEveryOp (the v1 behavior: one fsync per put) and
// once under DurabilityGroup (one fsync per commit batch) — and the
// report records throughput, per-put latency percentiles and the fsync
// accounting that explains the difference. Both modes give the same
// guarantee (a nil Put is on stable storage); only the flush schedule
// differs.

// storeBenchReport is the -store JSON schema (BENCH_store.json).
type storeBenchReport struct {
	Schema  string `json:"schema"`
	Writers int    `json:"writers"`
	// Puts is the total put count per mode (each mode writes its own
	// fresh store).
	Puts    int            `json:"puts"`
	EveryOp storeModeStats `json:"every_op"`
	Group   storeModeStats `json:"group_commit"`
	// Speedup is group-commit puts/sec over every-op puts/sec.
	Speedup float64 `json:"speedup"`
	// Backends is the v2 write matrix: the group-commit workload run once
	// per storage backend (fswal duplicates Group, kept for comparison in
	// one place; memory bounds what the WAL costs).
	Backends map[string]storeModeStats `json:"backends"`
	// Cache is the v2 read A/B (EXT-14): the hot party-record read
	// workload per backend, cache off vs on.
	Cache cacheBenchReport `json:"cache"`
}

// cacheBenchReport describes the read-through cache A/B.
type cacheBenchReport struct {
	Readers int     `json:"readers"`
	Reads   int     `json:"reads_per_side"`
	TTLMS   float64 `json:"ttl_ms"`
	// PerBackend maps backend name -> its off/on halves.
	PerBackend map[string]cacheABStats `json:"per_backend"`
}

// cacheABStats is one backend's off/on pair.
type cacheABStats struct {
	Off cacheSideStats `json:"cache_off"`
	On  cacheSideStats `json:"cache_on"`
	// Speedup is on reads/sec over off reads/sec.
	Speedup float64 `json:"speedup"`
}

// cacheSideStats is one half of a cache A/B.
type cacheSideStats struct {
	ElapsedMS    float64   `json:"elapsed_ms"`
	ReadsPerSec  float64   `json:"reads_per_sec"`
	ReadLatencyM latencyMS `json:"read_latency_ms"`
	// Cache counters (zero with the cache off). MissesPerTTLWindow is the
	// acceptance criterion: with singleflight coalescing, the hot record
	// costs at most ~1 backend fetch per TTL window however many readers
	// hammer it, so this stays ≈1. CoalescedGEMisses records that the
	// coalesced-wait counter is at least the miss counter (each refetch
	// had other readers piled on it).
	Hits               uint64  `json:"hits"`
	Misses             uint64  `json:"misses"`
	Coalesced          uint64  `json:"coalesced"`
	MissesPerTTLWindow float64 `json:"misses_per_ttl_window"`
	CoalescedGEMisses  bool    `json:"coalesced_ge_misses"`
}

// storeModeStats is one half of the A/B.
type storeModeStats struct {
	ElapsedMS    float64   `json:"elapsed_ms"`
	PutsPerSec   float64   `json:"puts_per_sec"`
	PutLatencyMS latencyMS `json:"put_latency_ms"`
	// Fsyncs is store_fsync_total for the run; MeanBatch is committed
	// puts per fsync (store_wal_appends_total / store_fsync_total), the
	// realized group-commit coalescing factor.
	Fsyncs    int64   `json:"fsyncs"`
	MeanBatch float64 `json:"mean_batch"`
	Rotations int64   `json:"segment_rotations"`
}

// runStoreBench runs the A/B and writes the report to outPath.
func runStoreBench(w *os.File, writers, puts int, outPath string) error {
	if writers < 1 {
		writers = 1
	}
	if puts < writers {
		puts = writers
	}
	dir, err := os.MkdirTemp("", "storebench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	every, err := storeBenchMode(filepath.Join(dir, "everyop.wal"), store.DurabilityEveryOp, writers, puts)
	if err != nil {
		return fmt.Errorf("every-op pass: %w", err)
	}
	group, err := storeBenchMode(filepath.Join(dir, "group.wal"), store.DurabilityGroup, writers, puts)
	if err != nil {
		return fmt.Errorf("group-commit pass: %w", err)
	}

	rep := storeBenchReport{
		Schema:  "trustvo.benchjoin.store/v2",
		Writers: writers,
		Puts:    puts,
		EveryOp: every,
		Group:   group,
		Speedup: group.PutsPerSec / every.PutsPerSec,
	}
	fmt.Fprintf(w, "EXT-12 — durable puts, %d writers, %d puts per mode\n", writers, puts)
	fmt.Fprintf(w, "  %-22s %10s %12s %10s %12s\n", "mode", "puts/sec", "p50 / p99", "fsyncs", "puts/fsync")
	for _, row := range []struct {
		name string
		s    storeModeStats
	}{{"fsync-every-put (v1)", every}, {"group commit", group}} {
		fmt.Fprintf(w, "  %-22s %10.0f %5.2f/%5.2fms %10d %12.1f\n",
			row.name, row.s.PutsPerSec, row.s.PutLatencyMS.P50, row.s.PutLatencyMS.P99,
			row.s.Fsyncs, row.s.MeanBatch)
	}
	fmt.Fprintf(w, "  speedup: %.2fx\n", rep.Speedup)

	// v2 write matrix: the same group-commit workload once per backend.
	rep.Backends = map[string]storeModeStats{}
	fmt.Fprintf(w, "\n  write matrix (group commit, per backend)\n")
	fmt.Fprintf(w, "  %-22s %10s %12s %10s\n", "backend", "puts/sec", "p50 / p99", "fsyncs")
	for _, backend := range store.BackendKinds() {
		s, err := storeBenchBackend(filepath.Join(dir, backend+".wal"), backend, writers, puts)
		if err != nil {
			return fmt.Errorf("%s write pass: %w", backend, err)
		}
		rep.Backends[backend] = s
		fmt.Fprintf(w, "  %-22s %10.0f %5.2f/%5.2fms %10d\n",
			backend, s.PutsPerSec, s.PutLatencyMS.P50, s.PutLatencyMS.P99, s.Fsyncs)
	}

	// v2 read A/B (EXT-14): the hot party-record workload, cache off/on.
	cache, err := runCacheBench(w, dir)
	if err != nil {
		return err
	}
	rep.Cache = cache

	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "  report written to %s\n", outPath)
	}
	return nil
}

// storeBenchBackend runs the group-commit write workload against one
// storage backend.
func storeBenchBackend(path, backend string, writers, puts int) (storeModeStats, error) {
	return storeBenchRun(path, store.Options{Backend: backend, Durability: store.DurabilityGroup}, writers, puts)
}

// storeBenchMode drives the concurrent put workload against a fresh
// fswal store opened with durability d and collects the mode's stats.
func storeBenchMode(path string, d store.Durability, writers, puts int) (storeModeStats, error) {
	return storeBenchRun(path, store.Options{Durability: d}, writers, puts)
}

func storeBenchRun(path string, opts store.Options, writers, puts int) (storeModeStats, error) {
	reg := telemetry.NewRegistry()
	s, err := store.OpenWithOptions(path, opts)
	if err != nil {
		return storeModeStats{}, err
	}
	s.Instrument(reg)

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		samples []time.Duration
		firstMu sync.Mutex
		campErr error
	)
	recordErr := func(err error) {
		firstMu.Lock()
		defer firstMu.Unlock()
		if campErr == nil {
			campErr = err
		}
	}
	perWorker := puts / writers
	extra := puts % writers
	t0 := time.Now()
	for i := 0; i < writers; i++ {
		n := perWorker
		if i < extra {
			n++
		}
		wg.Add(1)
		go func(worker, n int) {
			defer wg.Done()
			local := make([]time.Duration, 0, n)
			for j := 0; j < n; j++ {
				doc := fmt.Sprintf(`<doc seq="%d" worker="%d"/>`, j, worker)
				key := fmt.Sprintf("w%02d-%06d", worker, j)
				js := time.Now()
				if err := s.PutXML("bench", key, doc); err != nil {
					recordErr(fmt.Errorf("worker %d put %d: %w", worker, j, err))
					return
				}
				local = append(local, time.Since(js))
			}
			mu.Lock()
			defer mu.Unlock()
			samples = append(samples, local...)
		}(i, n)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	if campErr != nil {
		s.Destroy()
		return storeModeStats{}, campErr
	}
	if err := s.Destroy(); err != nil {
		return storeModeStats{}, err
	}

	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	fsyncs := reg.Counter("store_fsync_total").Value()
	appends := reg.Counter("store_wal_appends_total").Value()
	stats := storeModeStats{
		ElapsedMS:  durMS(elapsed),
		PutsPerSec: float64(len(samples)) / elapsed.Seconds(),
		PutLatencyMS: latencyMS{
			P50: durMS(percentile(samples, 0.50)),
			P95: durMS(percentile(samples, 0.95)),
			P99: durMS(percentile(samples, 0.99)),
		},
		Fsyncs:    fsyncs,
		Rotations: reg.Counter("store_segment_rotations_total").Value(),
	}
	if fsyncs > 0 {
		stats.MeanBatch = float64(appends) / float64(fsyncs)
	}
	return stats, nil
}

// Cache A/B (EXT-14): 32 readers repeat the hot party reload — list the
// credential kind and parse every record, the read pattern of N
// concurrent StartNegotiation calls rebuilding the same controller
// profile — against each backend, once reading the store directly and
// once through the coalescing read-through cache. The claim under test:
// with singleflight + TTL, the hot record set costs at most ~one backend
// fetch per TTL window regardless of reader count, and every refetch has
// other readers coalesced onto it (coalesced >= misses).
const (
	cacheReaders  = 32
	cacheReads    = 32_000 // total reads per half
	cacheTTL      = 5 * time.Millisecond
	cacheColdKeys = 64 // cold records seeded alongside the hot one
)

func runCacheBench(w *os.File, dir string) (cacheBenchReport, error) {
	rep := cacheBenchReport{
		Readers:    cacheReaders,
		Reads:      cacheReads,
		TTLMS:      durMS(cacheTTL),
		PerBackend: map[string]cacheABStats{},
	}
	fmt.Fprintf(w, "\n  read cache A/B (EXT-14): %d readers, %d reads, hot key, ttl %s\n",
		cacheReaders, cacheReads, cacheTTL)
	fmt.Fprintf(w, "  %-10s %14s %14s %8s %26s\n",
		"backend", "off reads/s", "on reads/s", "speedup", "misses/window  coal>=miss")
	for _, backend := range store.BackendKinds() {
		ab, err := cacheBenchBackend(filepath.Join(dir, "cache-"+backend+".wal"), backend)
		if err != nil {
			return rep, fmt.Errorf("%s cache pass: %w", backend, err)
		}
		rep.PerBackend[backend] = ab
		fmt.Fprintf(w, "  %-10s %14.0f %14.0f %7.2fx %15.2f  %10v\n",
			backend, ab.Off.ReadsPerSec, ab.On.ReadsPerSec, ab.Speedup,
			ab.On.MissesPerTTLWindow, ab.On.CoalescedGEMisses)
	}
	return rep, nil
}

func cacheBenchBackend(path, backend string) (cacheABStats, error) {
	s, err := store.OpenWithOptions(path, store.Options{Backend: backend, Durability: store.DurabilityGroup})
	if err != nil {
		return cacheABStats{}, err
	}
	defer s.Destroy()
	// One hot party record plus a cold tail, as a real party DB holds.
	if err := s.PutXML("credential", "hot/party", `<credential type="ISOCert"><issuer>CA</issuer></credential>`); err != nil {
		return cacheABStats{}, err
	}
	for i := 0; i < cacheColdKeys; i++ {
		if err := s.PutXML("credential", fmt.Sprintf("cold/%d", i), fmt.Sprintf(`<credential type="t%d"/>`, i%7)); err != nil {
			return cacheABStats{}, err
		}
	}

	// The reload shape: every credential of the kind, parsed. Reading the
	// store directly re-parses each defensive copy per reader; the cached
	// reload shares one pre-parsed fill per TTL window.
	off, err := cacheBenchSide(func() error { return parseAll(s.List("credential")) }, nil)
	if err != nil {
		return cacheABStats{}, err
	}
	c := cacher.New(s, cacheTTL)
	on, err := cacheBenchSide(func() error { return parseAll(c.List("credential")) }, c)
	if err != nil {
		return cacheABStats{}, err
	}
	return cacheABStats{Off: off, On: on, Speedup: on.ReadsPerSec / off.ReadsPerSec}, nil
}

// parseAll forces the DOM of every record, as LoadProfile does.
func parseAll(recs []*store.Record) error {
	for _, r := range recs {
		if _, err := r.Doc(); err != nil {
			return err
		}
	}
	return nil
}

// cacheBenchSide runs one half of the A/B: cacheReaders goroutines share
// cacheReads calls to read.
func cacheBenchSide(read func() error, c *cacher.Cache) (cacheSideStats, error) {
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		samples []time.Duration
		firstMu sync.Mutex
		runErr  error
	)
	perReader := cacheReads / cacheReaders
	// All readers fire together: the opening burst is the dogpile the
	// cache exists to absorb, so it must be part of the measurement.
	start := make(chan struct{})
	for r := 0; r < cacheReaders; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			local := make([]time.Duration, 0, perReader)
			for i := 0; i < perReader; i++ {
				js := time.Now()
				if err := read(); err != nil {
					firstMu.Lock() //lint:allow nakedlock three-line first-error record, no early return
					if runErr == nil {
						runErr = err
					}
					firstMu.Unlock()
					return
				}
				local = append(local, time.Since(js))
			}
			mu.Lock()
			defer mu.Unlock()
			samples = append(samples, local...)
		}()
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	if runErr != nil {
		return cacheSideStats{}, runErr
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	stats := cacheSideStats{
		ElapsedMS:   durMS(elapsed),
		ReadsPerSec: float64(len(samples)) / elapsed.Seconds(),
		ReadLatencyM: latencyMS{
			P50: durMS(percentile(samples, 0.50)),
			P95: durMS(percentile(samples, 0.95)),
			P99: durMS(percentile(samples, 0.99)),
		},
	}
	if c != nil {
		st := c.Stats()
		stats.Hits, stats.Misses, stats.Coalesced = st.Hits, st.Misses, st.Coalesced
		windows := float64(elapsed) / float64(cacheTTL)
		if windows > 0 {
			stats.MissesPerTTLWindow = float64(st.Misses) / windows
		}
		stats.CoalescedGEMisses = st.Coalesced >= st.Misses
	}
	return stats, nil
}
