// Command benchjoin regenerates the paper's Fig. 9 ("Join execution
// times"): it hosts the Aircraft Optimization initiator's toolkit on an
// HTTP loopback and times, over many iterations,
//
//	(a) the join WITH the integrated trust negotiation,
//	(b) the join WITHOUT it (the pre-integration baseline), and
//	(c) the identical negotiation run from the standalone TN web service,
//
// printing the same three rows the paper reports, plus the derived
// overhead the paper's §6.3.1 discusses. With -strategies it also prints
// the EXT-3 per-strategy comparison (rounds and latency). With -report
// it writes a structured JSON run report: the median rows plus the full
// telemetry registry (per-phase p50/p95/p99 latency, disclosure and
// session counters) accumulated across every timed negotiation.
//
// With -faults it instead runs the robustness demonstration: the same
// VO join repeated under seeded, deterministic fault injection (dropped,
// delayed, duplicated and truncated messages) and completed through the
// hardened transport's retries plus negotiation suspend/resume. The
// summary — and the -report JSON — then carries the injected-fault
// counts next to the retry, circuit-breaker, replay and resume counters.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"trustvo/internal/core"
	"trustvo/internal/faultinject"
	"trustvo/internal/negotiation"
	"trustvo/internal/pki"
	"trustvo/internal/telemetry"
	"trustvo/internal/vo"
	"trustvo/internal/vo/registry"
	"trustvo/internal/wsrpc"
	"trustvo/internal/xtnl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjoin: ")
	var (
		n          = flag.Int("n", 200, "iterations per measurement")
		strategies = flag.Bool("strategies", false, "also print the per-strategy comparison (EXT-3)")
		reportPath = flag.String("report", "", "write a JSON run report (medians + telemetry) to this file")
		faults     = flag.Bool("faults", false, "run joins under seeded fault injection instead of the Fig. 9 timing")
		seed       = flag.Int64("seed", 1, "fault-injection seed (with -faults)")

		concurrency = flag.Int("concurrency", 0, "run the throughput mode with this many simultaneous joiners instead of the Fig. 9 timing")
		joins       = flag.Int("joins", 0, "total joins in throughput mode (default 25 per worker)")
		baseline    = flag.Bool("baseline", false, "throughput mode: single lock stripe and no verification cache (the before half of the A/B)")
		out         = flag.String("out", "BENCH_throughput.json", "throughput mode: JSON report path (empty to skip)")

		storeMode = flag.Bool("store", false, "run the durable-write store A/B (group commit vs fsync-every-put, EXT-12) instead of the Fig. 9 timing")
		writers   = flag.Int("writers", 16, "store mode: concurrent writers")
		puts      = flag.Int("puts", 3200, "store mode: total puts per durability mode")
		storeOut  = flag.String("storeout", "BENCH_store.json", "store mode: JSON report path (empty to skip)")

		clusterMode   = flag.Bool("cluster", false, "run the sharded-TN scaling + failover benchmark (EXT-13) instead of the Fig. 9 timing")
		clusterNodes  = flag.Int("nodes", 3, "cluster mode: node count for the scaled half of the A/B")
		clusterRounds = flag.Int("failovers", 6, "cluster mode: node-kill failover recovery rounds")
		clusterOut    = flag.String("clusterout", "BENCH_cluster.json", "cluster mode: JSON report path (empty to skip)")
	)
	flag.Parse()
	if *clusterMode {
		if err := runClusterBench(os.Stdout, *clusterNodes, *concurrency, *joins, *clusterRounds, *clusterOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *storeMode {
		if err := runStoreBench(os.Stdout, *writers, *puts, *storeOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *concurrency > 0 {
		total := *joins
		if total <= 0 {
			total = *concurrency * 25
		}
		if err := runThroughput(os.Stdout, *concurrency, total, *baseline, *out); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *faults {
		if err := runFaults(os.Stdout, *n, *seed, *reportPath); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(os.Stdout, *n, *strategies, *reportPath); err != nil {
		log.Fatal(err)
	}
}

// benchReport is the -report schema: the Fig. 9 median rows in
// milliseconds plus the registry's structured report.
type benchReport struct {
	Schema     string             `json:"schema"`
	Iterations int                `json:"iterations"`
	MedianMS   map[string]float64 `json:"median_ms"`
	Telemetry  *telemetry.Report  `json:"telemetry"`
}

type env struct {
	srv    *httptest.Server
	tk     *wsrpc.ToolkitService
	member *wsrpc.MemberClient
	ca     *pki.Authority
}

func newEnv(reg *telemetry.Registry) (*env, error) {
	ca, err := pki.NewAuthority("CertCA")
	if err != nil {
		return nil, err
	}
	iniParty := &negotiation.Party{
		Name:     "AircraftCo",
		Profile:  xtnl.NewProfile("AircraftCo"),
		Policies: xtnl.MustPolicySet(),
		Trust:    pki.NewTrustStore(ca),
	}
	contract := &vo.Contract{
		VOName:    "AircraftOptimizationVO",
		Goal:      "wing optimization",
		Initiator: "AircraftCo",
		Roles: []vo.RoleSpec{{
			Name: "DesignWebPortal", Capabilities: []string{"design-db"}, MinMembers: 1,
			AdmissionPolicies: xtnl.MustParsePolicies(
				"M <- WebDesignerQuality(regulation='UNI EN ISO 9000'), AAAMember"),
		}},
	}
	ini, err := core.NewInitiator(contract, iniParty, registry.New())
	if err != nil {
		return nil, err
	}
	if err := ini.VO.StartFormation(); err != nil {
		return nil, err
	}
	tk := wsrpc.NewToolkitService(ini)
	tk.TN.Metrics = reg               // one registry across toolkit, standalone TN and member
	tk.TN.MaxSessionAge = time.Second // keep the session table small across iterations
	tk.TN.DoneRetention = 50 * time.Millisecond
	mux := http.NewServeMux()
	tk.Register(mux)
	srv := httptest.NewServer(mux)

	prof := xtnl.NewProfile("AerospaceCo")
	wdq, err := ca.Issue(pki.IssueRequest{
		Type: "WebDesignerQuality", Holder: "AerospaceCo",
		Attributes: []xtnl.Attribute{{Name: "regulation", Value: "UNI EN ISO 9000"}},
	})
	if err != nil {
		return nil, err
	}
	aaa, err := ca.Issue(pki.IssueRequest{Type: "AAAMember", Holder: "AerospaceCo"})
	if err != nil {
		return nil, err
	}
	prof.Add(wdq, aaa)
	member := &wsrpc.MemberClient{
		BaseURL: srv.URL,
		Party: &negotiation.Party{
			Name: "AerospaceCo", Profile: prof,
			Policies: xtnl.MustPolicySet(), Trust: pki.NewTrustStore(ca),
			Metrics: reg, // requester-side phase latencies land in the same report
		},
	}
	if err := member.Publish(context.Background(), &registry.Description{
		Provider: "AerospaceCo", Service: "DesignPortal", Capabilities: []string{"design-db"},
	}); err != nil {
		return nil, err
	}
	return &env{srv: srv, tk: tk, member: member, ca: ca}, nil
}

// measure runs fn n times and returns the median, preceded by a short
// untimed warm-up.
func measure(n int, fn func() error) (time.Duration, error) {
	for i := 0; i < 3; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	samples := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		samples = append(samples, time.Since(t0))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2], nil
}

func run(w *os.File, n int, strategies bool, reportPath string) error {
	reg := telemetry.NewRegistry()
	e, err := newEnv(reg)
	if err != nil {
		return err
	}
	defer e.srv.Close()
	reset := func() {
		if e.tk.Initiator.VO.Member("AerospaceCo") != nil {
			e.tk.Initiator.VO.Remove("AerospaceCo")
		}
	}

	joinTN, err := measure(n, func() error {
		reset()
		_, _, err := e.member.Join(context.Background(), "DesignWebPortal")
		return err
	})
	if err != nil {
		return fmt.Errorf("join with TN: %w", err)
	}
	join, err := measure(n, func() error {
		reset()
		if _, _, err := e.member.Apply(context.Background(), "DesignWebPortal"); err != nil {
			return err
		}
		_, err := e.member.JoinDirect(context.Background(), "DesignWebPortal")
		return err
	})
	if err != nil {
		return fmt.Errorf("join: %w", err)
	}

	// standalone TN: a separate TN service over the same policies, whose
	// grant is a plain receipt (no admission side effects).
	ctl := &negotiation.Party{
		Name:     "AircraftCo",
		Profile:  e.tk.Initiator.Party.Profile,
		Policies: e.tk.Initiator.Party.Policies,
		Trust:    e.tk.Initiator.Party.Trust,
		Grant:    func(resource, peer string) ([]byte, error) { return []byte("ok"), nil },
	}
	mux := http.NewServeMux()
	tnsvc := wsrpc.NewTNService(ctl)
	tnsvc.Metrics = reg
	tnsvc.MaxSessionAge = time.Second
	tnsvc.DoneRetention = 50 * time.Millisecond
	tnsvc.Register(mux)
	tnSrv := httptest.NewServer(mux)
	defer tnSrv.Close()
	tnClient := &wsrpc.TNClient{BaseURL: tnSrv.URL, Party: e.member.Party}
	resource := vo.MembershipResource("AircraftOptimizationVO", "DesignWebPortal")
	tn, err := measure(n, func() error {
		out, err := tnClient.Negotiate(context.Background(), resource)
		if err != nil {
			return err
		}
		if !out.Succeeded {
			return fmt.Errorf("negotiation failed: %s", out.Reason)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("standalone TN: %w", err)
	}

	fmt.Fprintf(w, "Fig. 9 — Join execution times (median of %d, Aircraft Optimization scenario)\n", n)
	fmt.Fprintf(w, "%-28s %12s    paper (P4 2GHz, SOAP+Oracle)\n", "measurement", "this run")
	fmt.Fprintf(w, "%-28s %12s    ~4000 ms\n", "Join with trust negotiation", fmtDur(joinTN))
	fmt.Fprintf(w, "%-28s %12s    ~3000 ms\n", "Join", fmtDur(join))
	fmt.Fprintf(w, "%-28s %12s    ~1000 ms (read from figure)\n", "trust negotiation", fmtDur(tn))
	fmt.Fprintln(w)
	fmt.Fprintf(w, "shape checks:\n")
	fmt.Fprintf(w, "  TN overhead on join:   %s (JoinTN − Join)   vs standalone TN %s\n",
		fmtDur(joinTN-join), fmtDur(tn))
	fmt.Fprintf(w, "  additivity Join+TN:    %s ≈ JoinTN %s\n", fmtDur(join+tn), fmtDur(joinTN))
	fmt.Fprintf(w, "  overhead ratio:        %.2fx (paper: 1.33x; see EXPERIMENTS.md for the analysis)\n",
		float64(joinTN)/float64(join))

	if strategies {
		fmt.Fprintln(w)
		if err := runStrategies(w, n, e); err != nil {
			return err
		}
	}
	if reportPath != "" {
		rep := benchReport{
			Schema:     "trustvo.benchjoin/v1",
			Iterations: n,
			MedianMS: map[string]float64{
				"join_with_tn":  durMS(joinTN),
				"join":          durMS(join),
				"tn_standalone": durMS(tn),
			},
			Telemetry: reg.Report(),
		}
		f, err := os.Create(reportPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nrun report written to %s\n", reportPath)
	}
	return nil
}

func durMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// faultReport is the -faults -report schema: join outcomes, injected
// fault counts, and the full telemetry registry (retry, breaker, replay
// and resume counters included).
type faultReport struct {
	Schema    string            `json:"schema"`
	Seed      int64             `json:"seed"`
	Joins     int               `json:"joins"`
	Completed int               `json:"completed"`
	Resumes   int               `json:"resumes"`
	Faults    map[string]int64  `json:"faults_injected"`
	Telemetry *telemetry.Report `json:"telemetry"`
}

// runFaults repeats the full VO join under seeded fault injection and
// reports how the hardened transport carried it through: every join must
// converge via retries — or suspend into a resume ticket that the next
// ResumeJoin completes.
func runFaults(w *os.File, n int, seed int64, reportPath string) error {
	ctx := context.Background()
	reg := telemetry.NewRegistry()
	e, err := newEnv(reg) // Publish runs over the clean transport
	if err != nil {
		return err
	}
	defer e.srv.Close()

	ft := faultinject.New(faultinject.Config{
		Seed:      seed,
		Drop:      0.20,
		Delay:     0.30,
		MaxDelay:  2 * time.Millisecond,
		Duplicate: 0.05,
		Truncate:  0.05,
	}, nil)
	ft.Metrics = reg
	// Under a 20% drop rate the default 4 attempts still give up about
	// once per ~600 requests; raise the budget so a run of joins
	// converges, and keep backoff tight for a loopback server.
	e.member.Transport = &wsrpc.Transport{
		HTTP: &http.Client{Transport: ft},
		Retry: wsrpc.RetryPolicy{
			MaxAttempts: 8,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    250 * time.Millisecond,
		},
		Metrics: reg,
	}
	e.member.ResumeTTL = time.Minute

	fmt.Fprintf(w, "fault-injection run: %d joins, seed=%d, profile drop=20%% delay=30%% dup=5%% trunc=5%%\n", n, seed)
	t0 := time.Now()
	completed, resumes := 0, 0
	for i := 0; i < n; i++ {
		if e.tk.Initiator.VO.Member("AerospaceCo") != nil {
			e.tk.Initiator.VO.Remove("AerospaceCo")
		}
		_, _, err := e.member.Join(ctx, "DesignWebPortal")
		for attempt := 0; err != nil; attempt++ {
			var se *wsrpc.SuspendedError
			if !errors.As(err, &se) {
				return fmt.Errorf("join %d failed unrecoverably: %w", i, err)
			}
			if attempt >= 10 {
				return fmt.Errorf("join %d: still suspended after %d resumes: %w", i, attempt, err)
			}
			resumes++
			_, _, err = e.member.ResumeJoin(ctx, se.Ticket)
		}
		completed++
	}
	elapsed := time.Since(t0)

	//lint:allow metricname read-side helper; names below are literals
	counter := func(name string, lv ...string) int64 { return reg.Counter(name, lv...).Value() }
	retries := counter("wsrpc_client_retries_total", "route", "/tn/start") +
		counter("wsrpc_client_retries_total", "route", "/tn/policyExchange") +
		counter("wsrpc_client_retries_total", "route", "/tn/credentialExchange") +
		counter("wsrpc_client_retries_total", "route", "/vo/apply")
	fmt.Fprintf(w, "  joins completed:   %d/%d in %v\n", completed, n, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  faults injected:   %s\n", ft.Stats.String())
	fmt.Fprintf(w, "  client retries:    %d (start/policy/credential/apply)\n", retries)
	fmt.Fprintf(w, "  breaker rejected:  %d   breaker tripped: %d\n",
		sumByRoute(reg, "wsrpc_client_breaker_rejected_total"),
		sumByRoute(reg, "wsrpc_client_breaker_tripped_total"))
	fmt.Fprintf(w, "  server replays:    %d (duplicate-suppression cache hits)\n", counter("tn_replays_total"))
	fmt.Fprintf(w, "  suspends/resumes:  %d/%d\n", counter("tn_suspends_total"), resumes)

	if reportPath != "" {
		rep := faultReport{
			Schema:    "trustvo.benchjoin.faults/v1",
			Seed:      seed,
			Joins:     n,
			Completed: completed,
			Resumes:   resumes,
			Faults: map[string]int64{
				"requests":  ft.Stats.Requests.Load(),
				"drop_pre":  ft.Stats.DropsPre.Load(),
				"drop_post": ft.Stats.DropsPost.Load(),
				"delay":     ft.Stats.Delays.Load(),
				"duplicate": ft.Stats.Duplicates.Load(),
				"truncate":  ft.Stats.Truncations.Load(),
			},
			Telemetry: reg.Report(),
		}
		f, err := os.Create(reportPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nrun report written to %s\n", reportPath)
	}
	return nil
}

// sumByRoute totals a per-route counter over the TN and toolkit routes
// the join touches.
func sumByRoute(reg *telemetry.Registry, name string) int64 {
	var total int64
	for _, route := range []string{
		"/tn/start", "/tn/policyExchange", "/tn/credentialExchange", "/tn/status", "/vo/apply",
	} {
		total += reg.Counter(name, "route", route).Value() //lint:allow metricname read-side sum helper; call sites pass literals
	}
	return total
}

// runStrategies prints the EXT-3 strategy comparison over in-process
// negotiations of the same admission scenario.
func runStrategies(w *os.File, n int, e *env) error {
	fmt.Fprintf(w, "EXT-3 — strategy comparison (in-process, median of %d)\n", n)
	fmt.Fprintf(w, "%-20s %12s %8s\n", "strategy", "latency", "rounds")
	ctl := &negotiation.Party{
		Name:     "AircraftCo",
		Profile:  e.tk.Initiator.Party.Profile,
		Policies: e.tk.Initiator.Party.Policies,
		Trust:    e.tk.Initiator.Party.Trust,
		Grant:    func(resource, peer string) ([]byte, error) { return []byte("ok"), nil },
	}
	resource := vo.MembershipResource("AircraftOptimizationVO", "DesignWebPortal")
	for _, s := range []negotiation.Strategy{negotiation.Trusting, negotiation.Standard} {
		req := *e.member.Party
		req.Strategy = s
		rounds := 0
		d, err := measure(n, func() error {
			out, _, err := negotiation.Run(&req, ctl, resource)
			if err != nil {
				return err
			}
			if !out.Succeeded {
				return fmt.Errorf("%s: %s", s, out.Reason)
			}
			rounds = out.Rounds
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-20s %12s %8d\n", s, fmtDur(d), rounds)
	}
	// suspicious strategies need selective credentials (§6.3)
	sel, err := e.ca.IssueSelective(pki.IssueRequest{
		Type: "WebDesignerQuality", Holder: "AerospaceCo",
		Attributes: []xtnl.Attribute{{Name: "regulation", Value: "UNI EN ISO 9000"}},
	})
	if err != nil {
		return err
	}
	selAAA, err := e.ca.IssueSelective(pki.IssueRequest{Type: "AAAMember", Holder: "AerospaceCo"})
	if err != nil {
		return err
	}
	keys, err := pki.GenerateKeyPair()
	if err != nil {
		return err
	}
	ctlKeys, err := pki.GenerateKeyPair()
	if err != nil {
		return err
	}
	ctl2 := *ctl
	ctl2.Keys = ctlKeys
	// EXT-9: the trust-ticket fast path on repeat negotiations.
	{
		reqT := *e.member.Party
		reqT.Tickets = negotiation.NewTicketCache()
		ctlT := *ctl
		keysT, err := pki.GenerateKeyPair()
		if err != nil {
			return err
		}
		ctlT.Keys = keysT
		ctlT.TicketTTL = time.Hour
		if out, _, err := negotiation.Run(&reqT, &ctlT, resource); err != nil || !out.Succeeded {
			return fmt.Errorf("ticket priming failed: %w", err)
		}
		rounds := 0
		d, err := measure(n, func() error {
			out, _, err := negotiation.Run(&reqT, &ctlT, resource)
			if err != nil {
				return err
			}
			if !out.Succeeded {
				return fmt.Errorf("ticketed: %s", out.Reason)
			}
			rounds = out.Rounds
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-20s %12s %8d\n", "trust ticket", fmtDur(d), rounds)
	}
	for _, s := range []negotiation.Strategy{negotiation.Suspicious, negotiation.StrongSuspicious} {
		req := negotiation.Party{
			Name:     "AerospaceCo",
			Profile:  xtnl.NewProfile("AerospaceCo"),
			Policies: xtnl.MustPolicySet(),
			Trust:    e.member.Party.Trust,
			Strategy: s,
			Keys:     keys,
			Selective: map[string]*pki.SelectiveCredential{
				sel.Committed.ID:    sel,
				selAAA.Committed.ID: selAAA,
			},
		}
		rounds := 0
		d, err := measure(n, func() error {
			out, _, err := negotiation.Run(&req, &ctl2, resource)
			if err != nil {
				return err
			}
			if !out.Succeeded {
				return fmt.Errorf("%s: %s", s, out.Reason)
			}
			rounds = out.Rounds
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-20s %12s %8d\n", s, fmtDur(d), rounds)
	}
	return nil
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3f ms", float64(d.Microseconds())/1000)
}
