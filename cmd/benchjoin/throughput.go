package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"trustvo/internal/negotiation"
	"trustvo/internal/pki"
	"trustvo/internal/telemetry"
	"trustvo/internal/vo"
	"trustvo/internal/wsrpc"
	"trustvo/internal/xtnl"
)

// Concurrent-join throughput mode (-concurrency): N workers, each with
// its own member identity and credentials, drive repeated standalone
// negotiations against ONE TN service — the load pattern of many parties
// joining a VO at once, which Fig. 9 times one join at a time. The run
// measures aggregate joins/sec plus per-join latency percentiles, and
// the -baseline flag re-runs the identical load with the verification
// cache disabled and the session table collapsed to a single lock
// stripe, which is the before/after pair EXPERIMENTS.md records.

// throughputReport is the -concurrency JSON schema (BENCH_throughput.json).
type throughputReport struct {
	Schema      string  `json:"schema"`
	Concurrency int     `json:"concurrency"`
	Joins       int     `json:"joins"`
	Failed      int     `json:"failed"`
	Baseline    bool    `json:"baseline"`
	Shards      int     `json:"shards"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	JoinsPerSec float64 `json:"joins_per_sec"`
	// JoinLatencyMS are whole-join client-side percentiles; the per-phase
	// breakdown (tn_phase_seconds{phase,role}) is under Telemetry.
	JoinLatencyMS latencyMS      `json:"join_latency_ms"`
	VerifyCache   pki.CacheStats `json:"verify_cache"`
	// SessionCounters reconciles the service's lifecycle accounting:
	// created == completed + expired + evicted must hold, and active
	// must be 0 once every worker has drained.
	SessionCounters map[string]int64  `json:"session_counters"`
	Telemetry       *telemetry.Report `json:"telemetry"`
}

type latencyMS struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// throughputEnv is the one-service-many-members fixture.
type throughputEnv struct {
	srv     *httptest.Server
	svc     *wsrpc.TNService
	trust   *pki.TrustStore
	reg     *telemetry.Registry
	members []*negotiation.Party
}

func newThroughputEnv(workers int, baseline bool) (*throughputEnv, error) {
	ca, err := pki.NewAuthority("CertCA")
	if err != nil {
		return nil, err
	}
	trust := pki.NewTrustStore(ca)
	trust.DisableCache = baseline
	ctl := &negotiation.Party{
		Name:    "AircraftCo",
		Profile: xtnl.NewProfile("AircraftCo"),
		Policies: xtnl.MustPolicySet(xtnl.MustParsePolicies(
			vo.MembershipResource("AircraftOptimizationVO", "DesignWebPortal") +
				" <- WebDesignerQuality(regulation='UNI EN ISO 9000'), AAAMember")...),
		Trust: trust,
		Grant: func(resource, peer string) ([]byte, error) { return []byte("ok"), nil },
	}
	reg := telemetry.NewRegistry()
	svc := wsrpc.NewTNService(ctl)
	svc.Metrics = reg
	if baseline {
		svc.Shards = 1
	}
	mux := http.NewServeMux()
	svc.Register(mux)
	srv := httptest.NewServer(mux)

	members := make([]*negotiation.Party, workers)
	for i := range members {
		holder := fmt.Sprintf("worker-%02d", i)
		prof := xtnl.NewProfile(holder)
		wdq, err := ca.Issue(pki.IssueRequest{
			Type: "WebDesignerQuality", Holder: holder,
			Attributes: []xtnl.Attribute{{Name: "regulation", Value: "UNI EN ISO 9000"}},
		})
		if err != nil {
			srv.Close()
			return nil, err
		}
		aaa, err := ca.Issue(pki.IssueRequest{Type: "AAAMember", Holder: holder})
		if err != nil {
			srv.Close()
			return nil, err
		}
		prof.Add(wdq, aaa)
		members[i] = &negotiation.Party{
			Name: holder, Profile: prof,
			Policies: xtnl.MustPolicySet(), Trust: pki.NewTrustStore(ca),
		}
	}
	return &throughputEnv{srv: srv, svc: svc, trust: trust, reg: reg, members: members}, nil
}

// runThroughput drives `joins` negotiations over `workers` goroutines
// and writes the throughput report to outPath.
func runThroughput(w *os.File, workers, joins int, baseline bool, outPath string) error {
	if workers < 1 {
		workers = 1
	}
	if joins < workers {
		joins = workers
	}
	e, err := newThroughputEnv(workers, baseline)
	if err != nil {
		return err
	}
	defer e.srv.Close()
	resource := vo.MembershipResource("AircraftOptimizationVO", "DesignWebPortal")

	// Untimed warm-up: one join per worker, so the timed window measures
	// the steady state rather than TLS-less HTTP connection setup and
	// first-parse costs.
	for _, m := range e.members {
		cli := &wsrpc.TNClient{BaseURL: e.srv.URL, Party: m}
		out, err := cli.Negotiate(context.Background(), resource)
		if err != nil {
			return fmt.Errorf("warm-up join as %s: %w", m.Name, err)
		}
		if !out.Succeeded {
			return fmt.Errorf("warm-up join as %s refused: %s", m.Name, out.Reason)
		}
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		samples  []time.Duration
		failures []error
	)
	perWorker := joins / workers
	extra := joins % workers
	t0 := time.Now()
	for i, m := range e.members {
		n := perWorker
		if i < extra {
			n++
		}
		wg.Add(1)
		go func(m *negotiation.Party, n int) {
			defer wg.Done()
			cli := &wsrpc.TNClient{BaseURL: e.srv.URL, Party: m}
			local := make([]time.Duration, 0, n)
			var localErrs []error
			for j := 0; j < n; j++ {
				js := time.Now()
				out, err := cli.Negotiate(context.Background(), resource)
				switch {
				case err != nil:
					localErrs = append(localErrs, fmt.Errorf("%s join %d: %w", m.Name, j, err))
				case !out.Succeeded:
					localErrs = append(localErrs, fmt.Errorf("%s join %d: refused: %s", m.Name, j, out.Reason))
				default:
					local = append(local, time.Since(js))
				}
			}
			mu.Lock()
			defer mu.Unlock()
			samples = append(samples, local...)
			failures = append(failures, localErrs...)
		}(m, n)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	stats := e.trust.CacheStats()
	rep := throughputReport{
		Schema:      "trustvo.benchjoin.throughput/v1",
		Concurrency: workers,
		Joins:       joins,
		Failed:      len(failures),
		Baseline:    baseline,
		Shards:      shardsOf(baseline),
		ElapsedMS:   durMS(elapsed),
		JoinsPerSec: float64(len(samples)) / elapsed.Seconds(),
		JoinLatencyMS: latencyMS{
			P50: durMS(percentile(samples, 0.50)),
			P95: durMS(percentile(samples, 0.95)),
			P99: durMS(percentile(samples, 0.99)),
		},
		VerifyCache: stats,
		SessionCounters: map[string]int64{
			"created":   e.reg.Counter("tn_sessions_created_total").Value(),
			"completed": sumCompleted(e.reg),
			"expired":   e.reg.Counter("tn_sessions_swept_total", "reason", "expired").Value(),
			"evicted":   e.reg.Counter("tn_sessions_swept_total", "reason", "evicted").Value(),
			"active":    e.reg.Gauge("tn_sessions_active").Value(),
		},
		Telemetry: e.reg.Report(),
	}

	mode := "striped+cached"
	if baseline {
		mode = "baseline (1 shard, no verify cache)"
	}
	fmt.Fprintf(w, "throughput — %d workers, %d joins, %s\n", workers, joins, mode)
	fmt.Fprintf(w, "  joins/sec:   %.1f (%d joins in %v, %d failed)\n",
		rep.JoinsPerSec, len(samples), elapsed.Round(time.Millisecond), len(failures))
	fmt.Fprintf(w, "  latency:     p50 %.3f ms   p95 %.3f ms   p99 %.3f ms\n",
		rep.JoinLatencyMS.P50, rep.JoinLatencyMS.P95, rep.JoinLatencyMS.P99)
	fmt.Fprintf(w, "  verify cache: %d hits / %d misses (%d entries)\n",
		stats.Hits, stats.Misses, stats.Entries)
	for _, err := range failures {
		fmt.Fprintf(w, "  FAILED: %v\n", err)
	}

	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "  report written to %s\n", outPath)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d of %d joins failed", len(failures), joins)
	}
	return nil
}

func shardsOf(baseline bool) int {
	if baseline {
		return 1
	}
	return wsrpc.DefaultSessionShards
}

func sumCompleted(reg *telemetry.Registry) int64 {
	return reg.Counter("tn_sessions_completed_total", "result", "success").Value() +
		reg.Counter("tn_sessions_completed_total", "result", "failure").Value()
}

// percentile returns the q-quantile of sorted samples (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
