package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"trustvo/internal/cluster"
	"trustvo/internal/negotiation"
	"trustvo/internal/pki"
	"trustvo/internal/store"
	"trustvo/internal/telemetry"
	"trustvo/internal/vo"
	"trustvo/internal/wsrpc"
	"trustvo/internal/xtnl"
)

// Cluster mode (-cluster): the sharded-TN scaling and failover
// benchmark. Because the benchmark host has a small, fixed number of
// CPUs, raw joins/sec cannot show horizontal scaling honestly; instead
// every node runs an explicit capacity model — clusterCapacity
// concurrent TN messages, each holding its slot for at least
// clusterFloor — so a node's message throughput is bounded by
// capacity/floor the way a production node is bounded by its own
// resources, and adding nodes adds real capacity. The A/B is the same
// worker pool against one node and against N nodes; the second half of
// the run kills a node mid-negotiation repeatedly and times how long a
// suspended client takes to resume against a survivor (failover
// recovery).
const (
	clusterCapacity = 2
	clusterFloor    = 25 * time.Millisecond
)

// clusterReport is the -cluster JSON schema (BENCH_cluster.json).
type clusterReport struct {
	Schema  string `json:"schema"`
	Nodes   int    `json:"nodes"`
	Workers int    `json:"workers"`
	Joins   int    `json:"joins"`
	// Capacity model parameters: per-node throughput is bounded by
	// capacity/service_floor messages per second.
	Capacity       int     `json:"capacity"`
	ServiceFloorMS float64 `json:"service_floor_ms"`

	SingleNodeJPS float64 `json:"single_node_joins_per_sec"`
	ClusterJPS    float64 `json:"cluster_joins_per_sec"`
	ScalingX      float64 `json:"scaling_x"`

	FailoverRounds     int       `json:"failover_rounds"`
	FailoverRecoveryMS latencyMS `json:"failover_recovery_ms"`

	Counters  map[string]int64  `json:"counters"`
	Telemetry *telemetry.Report `json:"telemetry"`
}

// benchNode is one live node of the benchmark cluster.
type benchNode struct {
	name   string
	node   *cluster.Node
	srv    *httptest.Server
	cancel context.CancelFunc
}

// clusterBenchEnv is an in-process N-node TN cluster.
type clusterBenchEnv struct {
	ring    *cluster.Ring
	reg     *telemetry.Registry
	keys    *pki.KeyPair
	ca      *pki.Authority
	trust   *pki.TrustStore
	baseDir string
	gen     int

	mu    sync.Mutex
	nodes map[string]*benchNode
	order []string // ring join order, for stable worker->node assignment
}

func newClusterBenchEnv(names []string) (*clusterBenchEnv, error) {
	ca, err := pki.NewAuthority("CertCA")
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "benchjoin-cluster-")
	if err != nil {
		return nil, err
	}
	e := &clusterBenchEnv{
		ring:    cluster.NewRing(0),
		reg:     telemetry.NewRegistry(),
		keys:    pki.MustGenerateKeyPair(),
		ca:      ca,
		trust:   pki.NewTrustStore(ca),
		baseDir: dir,
		nodes:   make(map[string]*benchNode),
	}
	for _, n := range names {
		if err := e.startNode(n); err != nil {
			e.close()
			return nil, err
		}
		e.ring.Add(n)
		e.order = append(e.order, n)
	}
	return e, nil
}

func (e *clusterBenchEnv) controllerParty() *negotiation.Party {
	return &negotiation.Party{
		Name:    "AircraftCo",
		Profile: xtnl.NewProfile("AircraftCo"),
		Policies: xtnl.MustPolicySet(xtnl.MustParsePolicies(
			vo.MembershipResource("AircraftOptimizationVO", "DesignWebPortal") +
				" <- WebDesignerQuality(regulation='UNI EN ISO 9000')")...),
		Trust: e.trust,
		Grant: func(resource, peer string) ([]byte, error) { return []byte("ok"), nil },
	}
}

func (e *clusterBenchEnv) startNode(name string) error {
	tnsvc := wsrpc.NewTNService(e.controllerParty())
	tnsvc.Metrics = e.reg
	tnsvc.Logf = func(string, ...any) {}

	mux := http.NewServeMux()
	srv := httptest.NewServer(mux)
	transport := &wsrpc.Transport{
		RequestTimeout:  2 * time.Second,
		Retry:           wsrpc.RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond},
		BreakerCooldown: 100 * time.Millisecond,
		Metrics:         e.reg,
	}
	node, err := cluster.NewNode(cluster.Config{
		Name:         name,
		Ring:         e.ring,
		TN:           tnsvc,
		Transport:    transport,
		Metrics:      e.reg,
		Keys:         e.keys,
		TicketTTL:    time.Minute,
		Capacity:     clusterCapacity,
		ServiceFloor: clusterFloor,
		Logf:         func(string, ...any) {},
	})
	if err != nil {
		srv.Close()
		return err
	}
	e.mu.Lock() //lint:allow nakedlock short gen bump; store open below runs unlocked
	e.gen++
	dir := filepath.Join(e.baseDir, fmt.Sprintf("%s-%d", name, e.gen))
	e.mu.Unlock()
	db, err := store.OpenWithOptions(dir, store.Options{OnCommit: node.OnCommit})
	if err != nil {
		srv.Close()
		return err
	}
	node.AttachDB(db)
	node.Register(mux)
	ctx, cancel := context.WithCancel(context.Background())
	node.Start(ctx)

	bn := &benchNode{name: name, node: node, srv: srv, cancel: cancel}
	e.mu.Lock() //lint:allow nakedlock peer wiring only; no early return before Unlock
	e.nodes[name] = bn
	for _, other := range e.nodes {
		other.node.SetPeer(name, srv.URL)
		bn.node.SetPeer(other.name, other.srv.URL)
	}
	e.mu.Unlock()
	return nil
}

func (e *clusterBenchEnv) baseOf(i int) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	for off := 0; off < len(e.order); off++ {
		if bn := e.nodes[e.order[(i+off)%len(e.order)]]; bn != nil {
			return bn.srv.URL
		}
	}
	return ""
}

func (e *clusterBenchEnv) kill(name string) {
	e.ring.Remove(name)
	e.mu.Lock() //lint:allow nakedlock teardown below must run outside the lock
	bn := e.nodes[name]
	delete(e.nodes, name)
	e.mu.Unlock()
	if bn == nil {
		return
	}
	bn.cancel()
	bn.srv.CloseClientConnections()
	bn.srv.Close()
	if db := bn.node.DB(); db != nil {
		db.Close()
	}
}

func (e *clusterBenchEnv) revive(name string) error {
	if err := e.startNode(name); err != nil {
		return err
	}
	e.ring.Add(name)
	return nil
}

func (e *clusterBenchEnv) close() {
	e.mu.Lock() //lint:allow nakedlock kill below re-locks per node
	names := make([]string, 0, len(e.nodes))
	for n := range e.nodes {
		names = append(names, n)
	}
	e.mu.Unlock()
	for _, n := range names {
		e.kill(n)
	}
	os.RemoveAll(e.baseDir)
}

func (e *clusterBenchEnv) memberParty(name string) (*negotiation.Party, error) {
	prof := xtnl.NewProfile(name)
	cred, err := e.ca.Issue(pki.IssueRequest{
		Type: "WebDesignerQuality", Holder: name,
		Attributes: []xtnl.Attribute{{Name: "regulation", Value: "UNI EN ISO 9000"}},
	})
	if err != nil {
		return nil, err
	}
	prof.Add(cred)
	return &negotiation.Party{
		Name: name, Profile: prof,
		Policies: xtnl.MustPolicySet(), Trust: pki.NewTrustStore(e.ca),
	}, nil
}

// measureJoins drives `joins` negotiations over `workers` goroutines,
// each worker pinned round-robin to a node, and returns joins/sec.
func (e *clusterBenchEnv) measureJoins(workers, joins int) (float64, error) {
	resource := vo.MembershipResource("AircraftOptimizationVO", "DesignWebPortal")
	parties := make([]*negotiation.Party, workers)
	for i := range parties {
		p, err := e.memberParty(fmt.Sprintf("bench-%02d", i))
		if err != nil {
			return 0, err
		}
		parties[i] = p
	}
	// Untimed warm-up: one join per worker.
	for i, p := range parties {
		cli := &wsrpc.TNClient{BaseURL: e.baseOf(i), Party: p}
		out, err := cli.Negotiate(context.Background(), resource)
		if err != nil {
			return 0, fmt.Errorf("warm-up join: %w", err)
		}
		if !out.Succeeded {
			return 0, fmt.Errorf("warm-up join refused: %s", out.Reason)
		}
	}
	perWorker := joins / workers
	extra := joins % workers
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		ok       int
		firstErr error
	)
	t0 := time.Now()
	for i, p := range parties {
		n := perWorker
		if i < extra {
			n++
		}
		wg.Add(1)
		go func(i int, p *negotiation.Party, n int) {
			defer wg.Done()
			cli := &wsrpc.TNClient{BaseURL: e.baseOf(i), Party: p}
			for j := 0; j < n; j++ {
				out, err := cli.Negotiate(context.Background(), resource)
				mu.Lock() //lint:allow nakedlock per-join tally inside a loop; defer would hold the lock across joins
				switch {
				case err != nil && firstErr == nil:
					firstErr = err
				case err == nil && !out.Succeeded && firstErr == nil:
					firstErr = fmt.Errorf("join refused: %s", out.Reason)
				case err == nil && out.Succeeded:
					ok++
				}
				mu.Unlock()
			}
		}(i, p, n)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	if firstErr != nil {
		return 0, firstErr
	}
	return float64(ok) / elapsed.Seconds(), nil
}

// measureFailover kills the node a client is mid-negotiation with and
// times kill -> successful completion on a survivor, over `rounds`.
func (e *clusterBenchEnv) measureFailover(rounds int) ([]time.Duration, error) {
	resource := vo.MembershipResource("AircraftOptimizationVO", "DesignWebPortal")
	samples := make([]time.Duration, 0, rounds)
	for r := 0; r < rounds; r++ {
		victim := e.order[r%len(e.order)]
		e.mu.Lock() //lint:allow nakedlock short liveness probe; kill/resume below run unlocked
		bn := e.nodes[victim]
		e.mu.Unlock()
		if bn == nil {
			return nil, fmt.Errorf("failover round %d: victim %s not live", r, victim)
		}
		party, err := e.memberParty(fmt.Sprintf("failover-%02d", r))
		if err != nil {
			return nil, err
		}
		cli := &wsrpc.TNClient{
			BaseURL: bn.srv.URL,
			Party:   party,
			Transport: &wsrpc.Transport{
				RequestTimeout:  2 * time.Second,
				Retry:           wsrpc.RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond},
				BreakerCooldown: 50 * time.Millisecond,
				Metrics:         e.reg,
			},
			ResumeTTL: time.Minute,
		}
		// With a >= clusterFloor hold per message the join cannot finish
		// before the kill lands a third of the way in.
		killAt := make(chan time.Time, 1)
		go func() {
			time.Sleep(clusterFloor + clusterFloor/2)
			t := time.Now()
			e.kill(victim)
			killAt <- t
		}()
		out, err := cli.Negotiate(context.Background(), resource)
		killed := <-killAt
		for resumes := 0; err != nil; resumes++ {
			var se *wsrpc.SuspendedError
			if !errors.As(err, &se) {
				return nil, fmt.Errorf("failover round %d: non-resumable: %w", r, err)
			}
			if resumes > 200 {
				return nil, fmt.Errorf("failover round %d: no convergence: %w", r, err)
			}
			time.Sleep(5 * time.Millisecond)
			cli.BaseURL = e.baseOf(r + 1) // a survivor
			out, err = cli.Resume(context.Background(), se.Ticket)
		}
		if !out.Succeeded {
			return nil, fmt.Errorf("failover round %d: refused: %s", r, out.Reason)
		}
		samples = append(samples, time.Since(killed))
		if err := e.revive(victim); err != nil {
			return nil, fmt.Errorf("failover round %d: revive: %w", r, err)
		}
	}
	return samples, nil
}

// runClusterBench runs the scaling A/B and the failover recovery
// measurement, writes BENCH_cluster.json, and enforces the scaling
// floor.
func runClusterBench(w *os.File, nodes, workers, joins, rounds int, outPath string) error {
	if nodes < 2 {
		nodes = 3
	}
	if workers < 1 {
		workers = 2 * nodes
	}
	if joins < workers {
		joins = workers * 8
	}
	if rounds < 1 {
		rounds = 6
	}
	fmt.Fprintf(w, "cluster — capacity model %d slots / %v floor per node\n", clusterCapacity, clusterFloor)

	single, err := newClusterBenchEnv([]string{"b1"})
	if err != nil {
		return err
	}
	singleJPS, err := single.measureJoins(workers, joins)
	single.close()
	if err != nil {
		return fmt.Errorf("single-node run: %w", err)
	}
	fmt.Fprintf(w, "  1 node:  %.1f joins/sec (%d joins, %d workers)\n", singleJPS, joins, workers)

	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("b%d", i+1)
	}
	clu, err := newClusterBenchEnv(names)
	if err != nil {
		return err
	}
	defer clu.close()
	clusterJPS, err := clu.measureJoins(workers, joins)
	if err != nil {
		return fmt.Errorf("%d-node run: %w", nodes, err)
	}
	scaling := clusterJPS / singleJPS
	fmt.Fprintf(w, "  %d nodes: %.1f joins/sec — %.2fx\n", nodes, clusterJPS, scaling)

	samples, err := clu.measureFailover(rounds)
	if err != nil {
		return err
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	recovery := latencyMS{
		P50: durMS(percentile(samples, 0.50)),
		P95: durMS(percentile(samples, 0.95)),
		P99: durMS(percentile(samples, 0.99)),
	}
	fmt.Fprintf(w, "  failover: kill -> resumed join done, %d rounds: p50 %.1f ms  p95 %.1f ms\n",
		rounds, recovery.P50, recovery.P95)

	rep := clusterReport{
		Schema:             "trustvo.benchjoin.cluster/v1",
		Nodes:              nodes,
		Workers:            workers,
		Joins:              joins,
		Capacity:           clusterCapacity,
		ServiceFloorMS:     durMS(clusterFloor),
		SingleNodeJPS:      singleJPS,
		ClusterJPS:         clusterJPS,
		ScalingX:           scaling,
		FailoverRounds:     rounds,
		FailoverRecoveryMS: recovery,
		Counters: map[string]int64{
			"cluster_forwards_total": clu.reg.Counter("cluster_forwards_total", "route", "/tn/policyExchange").Value() +
				clu.reg.Counter("cluster_forwards_total", "route", "/tn/credentialExchange").Value(),
			"cluster_adoptions_standby":   clu.reg.Counter("cluster_adoptions_total", "source", "standby").Value(),
			"cluster_adoptions_migration": clu.reg.Counter("cluster_adoptions_total", "source", "migration").Value(),
			"cluster_standby_ships_ok":    clu.reg.Counter("cluster_standby_ships_total", "result", "ok").Value(),
			"tn_sessions_adopted_total":   clu.reg.Counter("tn_sessions_adopted_total").Value(),
		},
		Telemetry: clu.reg.Report(),
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "  report written to %s\n", outPath)
	}
	// The capacity model makes scaling near-linear by construction;
	// falling under the floor means routing or replication overhead is
	// eating a node's capacity.
	const minScaling = 2.2
	if nodes >= 3 && scaling < minScaling {
		return fmt.Errorf("cluster scaling %.2fx under the %.1fx floor at %d nodes", scaling, minScaling, nodes)
	}
	return nil
}
