package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"trustvo/internal/analysis"
)

// capture runs vetvo's run() with stdout redirected to a temp file and
// returns the exit code and output.
func capture(t *testing.T, args ...string) (int, []byte) {
	t.Helper()
	out, err := os.CreateTemp(t.TempDir(), "vetvo-out-*")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	code := run(args, out, os.Stderr)
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, data
}

// TestTreeCleanJSON is the acceptance gate in test form: the shipped
// tree must produce zero findings, and -json must emit a well-formed
// (empty) array rather than nothing.
func TestTreeCleanJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	// run() resolves the module from the working directory; tests run
	// in cmd/vetvo, which is inside the module, so this exercises the
	// same path CI uses.
	if _, err := os.Stat(filepath.Join("..", "..", "go.mod")); err != nil {
		t.Skipf("module root not found: %v", err)
	}
	code, data := capture(t, "-json", "./...")
	if code != 0 {
		t.Fatalf("vetvo on the shipped tree exited %d:\n%s", code, data)
	}
	var findings []analysis.Finding
	if err := json.Unmarshal(data, &findings); err != nil {
		t.Fatalf("-json output is not a findings array: %v\n%s", err, data)
	}
	if len(findings) != 0 {
		t.Fatalf("shipped tree has findings: %v", findings)
	}
}

func TestUnknownAnalyzerExits2(t *testing.T) {
	code, _ := capture(t, "-only", "nosuch")
	if code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
}

func TestFilterPackages(t *testing.T) {
	pkgs := []*analysis.Package{
		{Path: "trustvo"},
		{Path: "trustvo/internal/wsrpc"},
		{Path: "trustvo/internal/wsrpc/sub"},
		{Path: "trustvo/cmd/vetvo"},
	}
	cases := []struct {
		patterns []string
		want     int
	}{
		{nil, 4},
		{[]string{"./..."}, 4},
		{[]string{"internal/wsrpc"}, 1},
		{[]string{"./internal/wsrpc/"}, 1},
		{[]string{"./internal/wsrpc/..."}, 2},
		{[]string{"trustvo/cmd/vetvo"}, 1},
		{[]string{"nonexistent"}, 0},
	}
	for _, c := range cases {
		got := filterPackages(pkgs, "trustvo", c.patterns)
		if len(got) != c.want {
			t.Errorf("filterPackages(%v) matched %d packages, want %d", c.patterns, len(got), c.want)
		}
	}
}
