// Command vetvo runs the module's domain static analyzers (see
// internal/analysis) over every package in the tree and exits non-zero
// on findings, making the negotiation/telemetry/codec invariants a CI
// gate rather than a convention.
//
// Usage:
//
//	go run ./cmd/vetvo [-json] [-only a,b] [-skip a,b] [packages]
//
// With no package arguments (or "./..."), the whole module is
// analyzed; otherwise findings are limited to packages whose import
// path matches an argument (a trailing "/..." matches the subtree).
// Deliberate exceptions are annotated in source with
// `//lint:allow <analyzer> reason`.
//
// Exit status: 0 clean, 1 findings, 2 usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"trustvo/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("vetvo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	only := fs.String("only", "", "comma-separated analyzers to run (default: all)")
	skip := fs.String("skip", "", "comma-separated analyzers to skip")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite, err := analysis.Select(analysis.Suite(), splitList(*only), splitList(*skip))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	root, modPath, err := analysis.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader := analysis.NewLoader()
	loader.AddRoot(modPath, root)
	pkgs, err := loader.LoadModule(modPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if selected := filterPackages(pkgs, modPath, fs.Args()); selected != nil {
		pkgs = selected
	} else {
		fmt.Fprintf(stderr, "vetvo: no packages match %v\n", fs.Args())
		return 2
	}

	findings, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].File); err == nil {
			findings[i].File = rel
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stdout, "vetvo: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// filterPackages narrows pkgs to the requested patterns. Patterns are
// import paths or ./-relative directories; "p/..." matches the
// subtree. Returns nil when patterns were given but none matched.
func filterPackages(pkgs []*analysis.Package, modPath string, patterns []string) []*analysis.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	matchers := make([]func(string) bool, 0, len(patterns))
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		recursive := false
		if pat != "/" {
			pat = strings.TrimSuffix(pat, "/")
		}
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			recursive, pat = true, strings.TrimSuffix(rest, "/")
		}
		if pat == "" || pat == "." {
			return pkgs
		}
		if pat != modPath && !strings.HasPrefix(pat, modPath+"/") {
			pat = modPath + "/" + pat
		}
		want := pat
		matchers = append(matchers, func(path string) bool {
			return path == want || (recursive && strings.HasPrefix(path, want+"/"))
		})
	}
	var out []*analysis.Package
	for _, p := range pkgs {
		for _, m := range matchers {
			if m(p.Path) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
