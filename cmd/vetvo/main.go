// Command vetvo runs the module's domain static analyzers (see
// internal/analysis) over every package in the tree and exits non-zero
// on findings, making the negotiation/telemetry/codec invariants a CI
// gate rather than a convention.
//
// Usage:
//
//	go run ./cmd/vetvo [-json|-sarif|-annotate] [-only a,b] [-skip a,b] [-budget 60s] [packages]
//
// With no package arguments (or "./..."), the whole module is
// analyzed; otherwise findings are limited to packages whose import
// path matches an argument (a trailing "/..." matches the subtree).
// Deliberate exceptions are annotated in source with
// `//lint:allow <analyzer> reason`.
//
// Output modes: text (default), -json (the Finding array), -sarif
// (SARIF 2.1.0 for code-scanning upload and CI annotation), -annotate
// (GitHub Actions ::error workflow commands, one per finding). The
// wall-clock for the whole run is always reported on stderr; -budget
// fails the run when it exceeds the given duration, keeping the CI
// gate honest about analysis cost.
//
// Exit status: 0 clean, 1 findings or budget exceeded, 2 usage or load
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"trustvo/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("vetvo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	annotate := fs.Bool("annotate", false, "emit findings as GitHub Actions ::error commands")
	only := fs.String("only", "", "comma-separated analyzers to run (default: all)")
	skip := fs.String("skip", "", "comma-separated analyzers to skip")
	budget := fs.Duration("budget", 0, "fail if the whole run exceeds this wall-clock duration (0 = no budget)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	start := time.Now()
	suite, err := analysis.Select(analysis.Suite(), splitList(*only), splitList(*skip))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	root, modPath, err := analysis.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader := analysis.NewLoader()
	loader.AddRoot(modPath, root)
	pkgs, err := loader.LoadModule(modPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if selected := filterPackages(pkgs, modPath, fs.Args()); selected != nil {
		pkgs = selected
	} else {
		fmt.Fprintf(stderr, "vetvo: no packages match %v\n", fs.Args())
		return 2
	}

	findings, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].File); err == nil {
			findings[i].File = rel
		}
	}
	switch {
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case *sarifOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sarifLog(suite, findings)); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case *annotate:
		for _, f := range findings {
			// GitHub workflow command; the runner turns these into PR
			// annotations at the finding's file and line.
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d,title=vetvo/%s::%s\n",
				f.File, f.Line, f.Col, f.Analyzer, escapeWorkflowData(f.Message))
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stdout, "vetvo: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		}
	}

	elapsed := time.Since(start).Round(time.Millisecond)
	fmt.Fprintf(stderr, "vetvo: %d analyzer(s) over %d package(s) in %s\n", len(suite), len(pkgs), elapsed)
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(stderr, "vetvo: wall-clock %s exceeded budget %s\n", elapsed, *budget)
		return 1
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// sarifLog renders findings as a minimal SARIF 2.1.0 log: one run, one
// rule per analyzer, one result per finding.
func sarifLog(suite []*analysis.Analyzer, findings []analysis.Finding) map[string]any {
	rules := make([]map[string]any, 0, len(suite))
	for _, a := range suite {
		rules = append(rules, map[string]any{
			"id":               a.Name,
			"shortDescription": map[string]any{"text": a.Doc},
		})
	}
	results := make([]map[string]any, 0, len(findings))
	for _, f := range findings {
		results = append(results, map[string]any{
			"ruleId":  f.Analyzer,
			"level":   "error",
			"message": map[string]any{"text": f.Message},
			"locations": []map[string]any{{
				"physicalLocation": map[string]any{
					"artifactLocation": map[string]any{"uri": filepath.ToSlash(f.File)},
					"region":           map[string]any{"startLine": f.Line, "startColumn": f.Col},
				},
			}},
		})
	}
	return map[string]any{
		"$schema": "https://json.schemastore.org/sarif-2.1.0.json",
		"version": "2.1.0",
		"runs": []map[string]any{{
			"tool": map[string]any{"driver": map[string]any{
				"name":           "vetvo",
				"informationUri": "https://example.invalid/trustvo/cmd/vetvo",
				"rules":          rules,
			}},
			"results": results,
		}},
	}
}

// escapeWorkflowData escapes finding text for a workflow command value.
func escapeWorkflowData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// filterPackages narrows pkgs to the requested patterns. Patterns are
// import paths or ./-relative directories; "p/..." matches the
// subtree. Returns nil when patterns were given but none matched.
func filterPackages(pkgs []*analysis.Package, modPath string, patterns []string) []*analysis.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	matchers := make([]func(string) bool, 0, len(patterns))
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		recursive := false
		if pat != "/" {
			pat = strings.TrimSuffix(pat, "/")
		}
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			recursive, pat = true, strings.TrimSuffix(rest, "/")
		}
		if pat == "" || pat == "." {
			return pkgs
		}
		if pat != modPath && !strings.HasPrefix(pat, modPath+"/") {
			pat = modPath + "/" + pat
		}
		want := pat
		matchers = append(matchers, func(path string) bool {
			return path == want || (recursive && strings.HasPrefix(path, want+"/"))
		})
	}
	var out []*analysis.Package
	for _, p := range pkgs {
		for _, m := range matchers {
			if m(p.Path) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
